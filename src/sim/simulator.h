// Single-threaded discrete-event simulator.
//
// All devices, engines, and workload drivers in this repository share one
// Simulator instance. Virtual time advances only when the event at the head
// of the queue fires; there is no wall-clock dependence, so every experiment
// is deterministic given its seeds.
//
// Events with equal timestamps fire in scheduling order (a monotonically
// increasing sequence number breaks ties), which keeps callback ordering
// stable across runs and platforms.
#ifndef BIZA_SRC_SIM_SIMULATOR_H_
#define BIZA_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace biza {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay_ns.
  void Schedule(SimTime delay_ns, Callback fn) {
    ScheduleAt(now_ + delay_ns, std::move(fn));
  }

  // Schedules `fn` at an absolute virtual time (must be >= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  // Runs events until the queue drains. Returns the final virtual time.
  SimTime RunUntilIdle();

  // Runs events with timestamp <= deadline; leaves later events queued.
  // Virtual time ends at min(deadline, last fired event time is <= deadline);
  // Now() is set to `deadline` on return so subsequent Schedule() calls are
  // relative to the deadline.
  void RunFor(SimTime duration_ns) { RunUntil(now_ + duration_ns); }
  void RunUntil(SimTime deadline);

  size_t pending_events() const { return queue_.size(); }
  uint64_t fired_events() const { return fired_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// A FIFO resource serving requests at a byte rate, with an optional fixed
// per-request setup cost. Models a controller port, a channel bus, or a die.
//
// Occupy() reserves the resource starting no earlier than `earliest` and
// returns the completion time; the resource is busy until then. This is the
// standard "next free time" queueing shortcut: adequate because requests at
// a stage are served FIFO.
class FifoResource {
 public:
  FifoResource() = default;
  FifoResource(double mb_per_s, SimTime fixed_ns)
      : ns_per_byte_(NsPerByte(mb_per_s)), fixed_ns_(fixed_ns) {}

  // Reserves the resource for `bytes` starting at max(earliest, free time).
  // Returns the completion time.
  SimTime Occupy(SimTime earliest, uint64_t bytes) {
    const SimTime start = earliest > free_at_ ? earliest : free_at_;
    const SimTime service =
        fixed_ns_ + static_cast<SimTime>(static_cast<double>(bytes) * ns_per_byte_);
    free_at_ = start + service;
    busy_ns_ += service;
    return free_at_;
  }

  // Reserves the resource for a fixed duration (e.g. a block erase).
  SimTime OccupyFor(SimTime earliest, SimTime duration) {
    const SimTime start = earliest > free_at_ ? earliest : free_at_;
    free_at_ = start + duration;
    busy_ns_ += duration;
    return free_at_;
  }

  SimTime free_at() const { return free_at_; }
  SimTime busy_ns() const { return busy_ns_; }

 private:
  double ns_per_byte_ = 0.0;
  SimTime fixed_ns_ = 0;
  SimTime free_at_ = 0;
  SimTime busy_ns_ = 0;
};

}  // namespace biza

#endif  // BIZA_SRC_SIM_SIMULATOR_H_
