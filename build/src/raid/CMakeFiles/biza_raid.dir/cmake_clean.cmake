file(REMOVE_RECURSE
  "CMakeFiles/biza_raid.dir/gf256.cc.o"
  "CMakeFiles/biza_raid.dir/gf256.cc.o.d"
  "CMakeFiles/biza_raid.dir/reed_solomon.cc.o"
  "CMakeFiles/biza_raid.dir/reed_solomon.cc.o.d"
  "libbiza_raid.a"
  "libbiza_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biza_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
