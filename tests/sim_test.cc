// Unit tests for the discrete-event simulator and the FIFO resource model.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace biza {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&]() { order.push_back(3); });
  sim.Schedule(10, [&]() { order.push_back(1); });
  sim.Schedule(20, [&]() { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(Simulator, TieBreaksByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(100, [&order, i]() { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Simulator, NestedSchedulingAdvancesTime) {
  Simulator sim;
  SimTime inner_fired_at = 0;
  sim.Schedule(10, [&]() {
    sim.Schedule(5, [&]() { inner_fired_at = sim.Now(); });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(inner_fired_at, 15u);
}

TEST(Simulator, ZeroDelayFiresAtSameTime) {
  Simulator sim;
  sim.Schedule(42, [&]() {
    sim.Schedule(0, [&]() { EXPECT_EQ(sim.Now(), 42u); });
  });
  sim.RunUntilIdle();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&]() { fired++; });
  sim.Schedule(100, [&]() { fired++; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.RunFor(100);
  EXPECT_EQ(sim.Now(), 100u);
  sim.RunFor(50);
  EXPECT_EQ(sim.Now(), 150u);
}

TEST(Simulator, CountsFiredEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(static_cast<SimTime>(i), []() {});
  }
  sim.RunUntilIdle();
  EXPECT_EQ(sim.fired_events(), 7u);
}

TEST(FifoResource, ServesBackToBack) {
  FifoResource r(/*mb_per_s=*/1000.0, /*fixed_ns=*/0);
  // 1000 bytes at 1000 MB/s = 1000 ns.
  EXPECT_EQ(r.Occupy(0, 1000), 1000u);
  EXPECT_EQ(r.Occupy(0, 1000), 2000u);  // queues behind the first
  EXPECT_EQ(r.Occupy(5000, 1000), 6000u);  // idle gap, starts at earliest
}

TEST(FifoResource, FixedCostAdds) {
  FifoResource r(1000.0, 500);
  EXPECT_EQ(r.Occupy(0, 1000), 1500u);
}

TEST(FifoResource, OccupyForReservesDuration) {
  FifoResource r;
  EXPECT_EQ(r.OccupyFor(100, 50), 150u);
  EXPECT_EQ(r.OccupyFor(0, 10), 160u);  // busy until 150
  EXPECT_EQ(r.busy_ns(), 60u);
}

TEST(FifoResource, TracksBusyTime) {
  FifoResource r(100.0, 0);
  r.Occupy(0, 1000);  // 10 us
  r.Occupy(100000, 1000);
  EXPECT_EQ(r.busy_ns(), 20000u);
}

}  // namespace
}  // namespace biza
