// Write-amplification breakdown assembled from device per-tag counters
// (Fig. 14: lighter segment = parity writes, darker = data writes, both
// normalised to the number of user-written blocks).
#ifndef BIZA_SRC_METRICS_WA_REPORT_H_
#define BIZA_SRC_METRICS_WA_REPORT_H_

#include <cstdint>

#include "src/common/write_tag.h"

namespace biza {

struct WaBreakdown {
  uint64_t user_blocks = 0;       // blocks written by the workload
  uint64_t flash_data = 0;        // data blocks programmed (incl. GC moves)
  uint64_t flash_parity = 0;      // parity blocks programmed
  uint64_t flash_meta = 0;

  uint64_t flash_total() const { return flash_data + flash_parity + flash_meta; }

  double DataRatio() const {
    return user_blocks == 0
               ? 0.0
               : static_cast<double>(flash_data) / static_cast<double>(user_blocks);
  }
  double ParityRatio() const {
    return user_blocks == 0
               ? 0.0
               : static_cast<double>(flash_parity) /
                     static_cast<double>(user_blocks);
  }
  double TotalRatio() const { return DataRatio() + ParityRatio(); }

  // Folds a device's per-tag counters in.
  void AddDeviceTags(const uint64_t flash_by_tag[kNumWriteTags]) {
    flash_data += flash_by_tag[static_cast<int>(WriteTag::kData)] +
                  flash_by_tag[static_cast<int>(WriteTag::kGcData)];
    flash_parity += flash_by_tag[static_cast<int>(WriteTag::kParity)] +
                    flash_by_tag[static_cast<int>(WriteTag::kGcParity)];
    flash_meta += flash_by_tag[static_cast<int>(WriteTag::kMeta)];
  }
};

}  // namespace biza

#endif  // BIZA_SRC_METRICS_WA_REPORT_H_
