
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_replay.cpp" "examples/CMakeFiles/trace_replay.dir/trace_replay.cpp.o" "gcc" "examples/CMakeFiles/trace_replay.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/biza_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/biza_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/biza/CMakeFiles/biza_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/biza_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/zns/CMakeFiles/biza_zns.dir/DependInfo.cmake"
  "/root/repo/build/src/convssd/CMakeFiles/biza_convssd.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/biza_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/biza_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/biza_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/biza_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
