file(REMOVE_RECURSE
  "CMakeFiles/biza_core.dir/biza_array.cc.o"
  "CMakeFiles/biza_core.dir/biza_array.cc.o.d"
  "CMakeFiles/biza_core.dir/channel_detector.cc.o"
  "CMakeFiles/biza_core.dir/channel_detector.cc.o.d"
  "CMakeFiles/biza_core.dir/ghost_cache.cc.o"
  "CMakeFiles/biza_core.dir/ghost_cache.cc.o.d"
  "CMakeFiles/biza_core.dir/zone_scheduler.cc.o"
  "CMakeFiles/biza_core.dir/zone_scheduler.cc.o.d"
  "libbiza_core.a"
  "libbiza_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biza_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
