// Tests of the fail-slow (gray-failure) detector and the time-varying
// fail-slow shapes it is designed to catch.
#include <gtest/gtest.h>

#include <vector>

#include "src/fault/fault_injector.h"
#include "src/health/device_health.h"
#include "src/sim/simulator.h"

namespace biza {
namespace {

using Kind = DeviceHealthMonitor::Kind;

constexpr SimTime kBase = 100000;   // healthy read, 100 us
constexpr SimTime kSlow = 800000;   // 8x stretch
constexpr SimTime kSpike = 2000000; // GC-style 20x outlier

HealthConfig SmallConfig() {
  HealthConfig config;
  config.enabled = true;
  config.window_ios = 8;        // tiny windows keep tests readable
  config.min_window_ns = 1000;  // samples below are spaced 1 us apart
  return config;
}

// Drives a monitor with a monotonically advancing sample clock.
class Harness {
 public:
  explicit Harness(HealthConfig config = SmallConfig())
      : mon(config, /*num_channels=*/4) {}

  void Feed(int device, Kind kind, int channel, SimTime latency, int n) {
    for (int i = 0; i < n; ++i) {
      now += 1000;
      mon.RecordLatency(device, kind, channel, latency, now);
    }
  }
  // One full read window (window_ios samples, spanning > min_window_ns).
  void ReadWindow(int device, SimTime latency) {
    Feed(device, Kind::kRead, -1, latency, 8);
  }
  // Gives every device except `subject` a warm 100 us read baseline.
  void WarmPeers(int subject) {
    for (int d = 0; d < 4; ++d) {
      if (d != subject) {
        ReadWindow(d, kBase);
      }
    }
  }
  void WarmPeerWrites(int subject) {
    for (int d = 0; d < 4; ++d) {
      if (d != subject) {
        Feed(d, Kind::kWrite, 0, kBase, 8);
      }
    }
  }

  DeviceHealthMonitor mon;
  SimTime now = 0;
};

TEST(DeviceHealthMonitor, UnseenDevicesAreHealthy) {
  Harness h;
  EXPECT_EQ(h.mon.num_devices(), 0);
  EXPECT_EQ(h.mon.state(0), DeviceHealth::kHealthy);
  EXPECT_EQ(h.mon.state(99), DeviceHealth::kHealthy);
  EXPECT_FALSE(h.mon.IsGray(3));
  EXPECT_FALSE(h.mon.IsGrayChannel(0, 0));
  EXPECT_FALSE(h.mon.ShouldHedge(0));
}

TEST(DeviceHealthMonitor, HysteresisHealthySuspectGray) {
  Harness h;
  h.WarmPeers(1);

  h.ReadWindow(1, kSlow);  // first hot window
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kSuspect);
  EXPECT_TRUE(h.mon.ShouldHedge(1));
  EXPECT_FALSE(h.mon.IsGray(1));

  h.ReadWindow(1, kSlow);  // second hot window: still only suspect
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kSuspect);

  h.ReadWindow(1, kSlow);  // third hot window crosses gray_windows
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kGray);
  EXPECT_TRUE(h.mon.IsGray(1));
  EXPECT_FALSE(h.mon.ShouldHedge(1));  // gray is reconstructed around, not hedged

  EXPECT_EQ(h.mon.stats().suspect_transitions, 1u);
  EXPECT_EQ(h.mon.stats().gray_transitions, 1u);
}

TEST(DeviceHealthMonitor, CalmWindowsRecoverAGrayDevice) {
  Harness h;
  h.WarmPeers(1);
  for (int i = 0; i < 3; ++i) {
    h.ReadWindow(1, kSlow);
  }
  ASSERT_EQ(h.mon.state(1), DeviceHealth::kGray);

  for (int i = 0; i < 3; ++i) {
    h.ReadWindow(1, kBase);
    EXPECT_EQ(h.mon.state(1), DeviceHealth::kGray) << "recovered early: " << i;
  }
  h.ReadWindow(1, kBase);  // fourth calm window crosses recover_windows
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kRecovered);
  EXPECT_EQ(h.mon.stats().recoveries, 1u);

  // A recovered device is scored like a healthy one: heat re-suspects it.
  h.ReadWindow(1, kSlow);
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kSuspect);
}

TEST(DeviceHealthMonitor, OneCalmWindowClearsSuspicion) {
  Harness h;
  h.WarmPeers(1);
  h.ReadWindow(1, kSlow);
  ASSERT_EQ(h.mon.state(1), DeviceHealth::kSuspect);
  h.ReadWindow(1, kBase);
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kHealthy);
  EXPECT_EQ(h.mon.stats().gray_transitions, 0u);
  // The hot streak must restart from scratch: two more hot windows are not
  // enough to go gray again.
  h.ReadWindow(1, kSlow);
  h.ReadWindow(1, kSlow);
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kSuspect);
}

TEST(DeviceHealthMonitor, OccasionalGcSpikesNeverGray) {
  Harness h;
  h.WarmPeers(1);
  // One 20x GC outlier per window: nearest-rank p99 of an 8-sample window
  // ignores the single largest sample, so the windows score calm.
  for (int w = 0; w < 20; ++w) {
    h.Feed(1, Kind::kRead, -1, kSpike, 1);
    h.Feed(1, Kind::kRead, -1, kBase, 7);
    EXPECT_EQ(h.mon.state(1), DeviceHealth::kHealthy) << "window " << w;
  }
  EXPECT_EQ(h.mon.stats().gray_transitions, 0u);
  EXPECT_EQ(h.mon.stats().suspect_transitions, 0u);
}

TEST(DeviceHealthMonitor, ZeroSpanBurstDoesNotCloseAWindow) {
  Harness h;
  h.WarmPeers(1);
  const uint64_t windows_before = h.mon.stats().windows;
  // A GC pulse: window_ios spike samples at one instant. Deep enough, but
  // not long enough — the window must stay open.
  for (int i = 0; i < 8; ++i) {
    h.mon.RecordLatency(1, Kind::kRead, -1, kSpike, h.now);
  }
  EXPECT_EQ(h.mon.stats().windows, windows_before);
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kHealthy);
  // Follow-on healthy traffic dilutes the burst; the device may flicker
  // suspect for one window but must never reach gray.
  for (int i = 0; i < 40; ++i) {
    h.Feed(1, Kind::kRead, -1, kBase, 8);
  }
  EXPECT_FALSE(h.mon.IsGray(1));
  EXPECT_EQ(h.mon.stats().gray_transitions, 0u);
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kHealthy);
}

TEST(DeviceHealthMonitor, ArrayWideSlowdownRaisesTheBaselineToo) {
  Harness h;
  h.WarmPeers(1);
  // A GC storm hits every member: all EWMAs rise together, so no single
  // device stands out against the peer median.
  for (int w = 0; w < 10; ++w) {
    for (int d = 0; d < 4; ++d) {
      h.ReadWindow(d, 4 * kBase);
    }
  }
  for (int d = 0; d < 4; ++d) {
    EXPECT_FALSE(h.mon.IsGray(d)) << "device " << d;
  }
  EXPECT_EQ(h.mon.stats().gray_transitions, 0u);
}

TEST(DeviceHealthMonitor, HedgeDelayDerivesFromPeerQuantile) {
  Harness h;
  // No peer windows yet: the floor applies.
  EXPECT_EQ(h.mon.HedgeDelayNs(1), h.mon.config().hedge_floor_ns);
  h.WarmPeers(1);
  // Peers' pooled last windows are all 100 us; q95 = 100 us, x2 safety.
  EXPECT_EQ(h.mon.HedgeDelayNs(1), 2 * kBase);
  // The subject's own (slow) windows must not poison its hedge timer.
  h.ReadWindow(1, kSlow);
  EXPECT_EQ(h.mon.HedgeDelayNs(1), 2 * kBase);
}

TEST(DeviceHealthMonitor, SlowChannelGraysWithoutDemotingTheDevice) {
  Harness h;
  h.WarmPeers(1);
  h.WarmPeerWrites(1);
  // Device 1: one slow write on channel 2 per seven healthy writes on
  // channel 0. The device-level windows score calm (p99 is a healthy
  // sample) while channel 2's dedicated windows fill with pure spikes.
  for (int i = 0; i < 40; ++i) {
    h.Feed(1, Kind::kWrite, 2, kSpike, 1);
    h.Feed(1, Kind::kWrite, 0, kBase, 7);
  }
  EXPECT_TRUE(h.mon.IsGrayChannel(1, 2));
  EXPECT_FALSE(h.mon.IsGrayChannel(1, 0));
  EXPECT_FALSE(h.mon.IsGray(1));
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kHealthy);
  EXPECT_GE(h.mon.stats().channel_gray_transitions, 1u);

  // Channel recovery: healthy traffic on channel 2 closes calm windows.
  for (int i = 0; i < 6; ++i) {
    h.Feed(1, Kind::kWrite, 2, kBase, 8);
  }
  EXPECT_FALSE(h.mon.IsGrayChannel(1, 2));
  EXPECT_GE(h.mon.stats().channel_recoveries, 1u);
}

TEST(DeviceHealthMonitor, ProbeScheduleIsPeriodic) {
  HealthConfig config = SmallConfig();
  config.probe_interval = 4;
  Harness h(config);
  for (int round = 0; round < 3; ++round) {
    EXPECT_FALSE(h.mon.ProbeDue(1));
    EXPECT_FALSE(h.mon.ProbeDue(1));
    EXPECT_FALSE(h.mon.ProbeDue(1));
    EXPECT_TRUE(h.mon.ProbeDue(1));
  }
  // Per-device counters: probing device 2 never advances device 1's clock.
  EXPECT_FALSE(h.mon.ProbeDue(2));
}

TEST(DeviceHealthMonitor, TransitionHookSeesEveryEdge) {
  Harness h;
  struct Edge {
    int device;
    DeviceHealth from;
    DeviceHealth to;
  };
  std::vector<Edge> edges;
  h.mon.SetTransitionHook([&](int d, DeviceHealth from, DeviceHealth to) {
    edges.push_back({d, from, to});
  });
  h.WarmPeers(1);
  for (int i = 0; i < 3; ++i) {
    h.ReadWindow(1, kSlow);
  }
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].device, 1);
  EXPECT_EQ(edges[0].from, DeviceHealth::kHealthy);
  EXPECT_EQ(edges[0].to, DeviceHealth::kSuspect);
  EXPECT_EQ(edges[1].from, DeviceHealth::kSuspect);
  EXPECT_EQ(edges[1].to, DeviceHealth::kGray);
}

TEST(DeviceHealthMonitor, ResetDeviceForgetsAndFiresHook) {
  Harness h;
  h.WarmPeers(1);
  for (int i = 0; i < 3; ++i) {
    h.ReadWindow(1, kSlow);
  }
  ASSERT_TRUE(h.mon.IsGray(1));
  int hook_fires = 0;
  h.mon.SetTransitionHook([&](int d, DeviceHealth from, DeviceHealth to) {
    hook_fires++;
    EXPECT_EQ(d, 1);
    EXPECT_EQ(from, DeviceHealth::kGray);
    EXPECT_EQ(to, DeviceHealth::kHealthy);
  });
  h.mon.ResetDevice(1);  // replacement took over the slot
  EXPECT_EQ(hook_fires, 1);
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kHealthy);
  h.mon.SetTransitionHook(nullptr);  // the re-suspect below is not under test
  // The replacement starts from a clean slate: one hot window is suspect,
  // not gray (no leftover streak).
  h.ReadWindow(1, kSlow);
  EXPECT_EQ(h.mon.state(1), DeviceHealth::kSuspect);
}

// ---- time-varying fail-slow shapes (FaultInjector side) ----

TEST(FaultInjector, EffectiveMultRampsLinearly) {
  DeviceFaultSpec spec;
  spec.latency_mult = 9.0;
  spec.ramp_start = 1000;
  spec.ramp_duration = 1000;
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(0), 1.0);
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(1000), 1.0);
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(1500), 5.0);  // halfway up
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(2000), 9.0);
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(50000), 9.0);  // holds
}

TEST(FaultInjector, EffectiveMultDutyCycles) {
  DeviceFaultSpec spec;
  spec.latency_mult = 8.0;
  spec.duty_period = 1000;
  spec.duty_on = 250;
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(0), 8.0);
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(249), 8.0);
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(250), 1.0);  // off phase
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(999), 1.0);
  EXPECT_DOUBLE_EQ(spec.EffectiveMult(1100), 8.0);  // next period
}

TEST(FaultInjector, StretchSerializesTheExcessSpan) {
  Simulator sim;
  FaultInjector fault(&sim);
  fault.SetFailSlow(0, 8.0);
  // A single outstanding I/O sees exactly span * mult.
  EXPECT_EQ(fault.StretchCompletion(0, -1, 100000, 0),
            static_cast<SimTime>(800000));
  // A concurrent I/O convoys behind the first one's recovery work: its
  // excess (700 us) queues after the lane frees at 800 us.
  EXPECT_EQ(fault.StretchCompletion(0, -1, 100000, 0),
            static_cast<SimTime>(1500000));
  // Other devices have their own lane.
  fault.SetFailSlow(1, 8.0);
  EXPECT_EQ(fault.StretchCompletion(1, -1, 100000, 0),
            static_cast<SimTime>(800000));
  // Healthy devices are untouched.
  EXPECT_EQ(fault.StretchCompletion(2, -1, 100000, 0),
            static_cast<SimTime>(100000));
}

TEST(FaultInjector, StretchLaneDrainsWhenIdle) {
  Simulator sim;
  FaultInjector fault(&sim);
  fault.SetFailSlow(0, 4.0);
  EXPECT_EQ(fault.StretchCompletion(0, -1, 100000, 0),
            static_cast<SimTime>(400000));
  // An I/O arriving after the lane went idle pays only its own stretch.
  EXPECT_EQ(fault.StretchCompletion(0, -1, 1100000, 1000000),
            static_cast<SimTime>(1400000));
}

}  // namespace
}  // namespace biza
