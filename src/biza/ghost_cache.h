// Ghost-cache-based chunk classifier — the zone group selector's brain
// (§4.2, Fig. 7).
//
// Three attribute-only ("ghost") caches track write locality:
//
//   LRU cache  -- admission filter: chunks with poor temporal locality fall
//                 off the tail and stay "trivial".
//   HR cache   -- high-revenue: chunks whose predicted reaccess count passed
//                 the promotion threshold. Priority queue evicting the
//                 MINIMUM reaccess count back to the LRU cache.
//   HP cache   -- high-profit: high-revenue chunks whose predicted reuse
//                 distance is short enough to fit ZRWA. Priority queue
//                 evicting the MAXIMUM reuse distance back to the HR cache.
//
// Predictions (paper's choices): accumulated reaccess count, and a weighted
// moving average of recent reuse distances. Reuse distance is measured in
// blocks written between two consecutive writes of the same key.
//
// The caches store attributes only — no payloads — so a million tracked
// chunks cost a few tens of MB (7.6 MB in the paper's configuration).
#ifndef BIZA_SRC_BIZA_GHOST_CACHE_H_
#define BIZA_SRC_BIZA_GHOST_CACHE_H_

#include <cstdint>
#include <list>
#include <set>
#include <unordered_map>

namespace biza {

enum class ChunkTier : uint8_t {
  kTrivial = 0,      // unknown / poor locality -> trivial zone group
  kHighRevenue = 1,  // many reaccesses, long reuse -> GC-aware zone group
  kHighProfit = 2,   // many reaccesses, short reuse -> ZRWA-aware zone group
};

struct GhostCacheConfig {
  uint64_t lru_entries = 65536;
  uint64_t hr_entries = 16384;
  uint64_t hp_entries = 2048;
  uint32_t promote_reaccess = 3;        // LRU -> HR threshold (paper: 3)
  uint64_t hp_reuse_threshold = 28672;  // blocks; set to 2 x total ZRWA
  double reuse_ewma_alpha = 0.5;
};

struct GhostCacheStats {
  uint64_t lookups = 0;
  uint64_t lru_hits = 0;
  uint64_t hr_promotions = 0;
  uint64_t hp_promotions = 0;
  uint64_t hr_demotions = 0;   // HP -> HR evictions
  uint64_t lru_demotions = 0;  // HR -> LRU evictions
};

class GhostCache {
 public:
  explicit GhostCache(const GhostCacheConfig& config) : config_(config) {}

  // Records a write of `key` (one block) and returns the tier the chunk
  // should be placed in. Advances the reuse-distance clock by one block.
  ChunkTier OnWrite(uint64_t key);

  // Current tier without side effects (kTrivial if untracked or LRU-only).
  ChunkTier TierOf(uint64_t key) const;

  const GhostCacheStats& stats() const { return stats_; }
  uint64_t tracked_entries() const { return nodes_.size(); }
  uint64_t clock() const { return clock_; }

 private:
  enum class Residence : uint8_t { kLru, kHr, kHp };

  struct Node {
    Residence where = Residence::kLru;
    uint32_t reaccess = 0;
    double reuse_ewma = 0.0;
    bool has_reuse = false;
    uint64_t last_clock = 0;
    std::list<uint64_t>::iterator lru_it;  // valid iff where == kLru
  };

  // Reuse distance quantized for set ordering (ties broken by key).
  static uint64_t Quantize(double reuse) {
    return reuse < 0.0 ? 0 : static_cast<uint64_t>(reuse);
  }

  void UpdateAttrs(Node& node);
  void InsertLru(uint64_t key, Node& node);
  void PromoteToHr(uint64_t key, Node& node);
  void PromoteToHp(uint64_t key, Node& node);
  void EvictHrIfFull();
  void EvictHpIfFull();

  GhostCacheConfig config_;
  std::unordered_map<uint64_t, Node> nodes_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::set<std::pair<uint32_t, uint64_t>> hr_;  // (reaccess, key), min-evict
  std::set<std::pair<uint64_t, uint64_t>> hp_;  // (reuse, key), max-evict
  uint64_t clock_ = 0;
  GhostCacheStats stats_;
};

}  // namespace biza

#endif  // BIZA_SRC_BIZA_GHOST_CACHE_H_
