#include "src/fault/fault_injector.h"

#include <string>

namespace biza {

double DeviceFaultSpec::EffectiveMult(SimTime now) const {
  double mult = latency_mult;
  if (mult <= 1.0) {
    return mult;
  }
  if (ramp_duration > 0) {
    if (now <= ramp_start) {
      return 1.0;
    }
    if (now < ramp_start + ramp_duration) {
      const double frac = static_cast<double>(now - ramp_start) /
                          static_cast<double>(ramp_duration);
      mult = 1.0 + frac * (mult - 1.0);
    }
  }
  if (duty_period > 0 && now % duty_period >= duty_on) {
    return 1.0;  // off phase of the duty cycle
  }
  return mult;
}

FaultInjector::FaultInjector(Simulator* sim, FaultPlan plan)
    : sim_(sim), seed_(plan.seed) {
  for (size_t d = 0; d < plan.devices.size(); ++d) {
    StateFor(static_cast<int>(d)).spec = plan.devices[d];
  }
}

FaultInjector::DeviceState& FaultInjector::StateFor(int device) {
  while (devices_.size() <= static_cast<size_t>(device)) {
    // Per-device RNG streams: decisions for one device never consume random
    // numbers from another's stream, so adding faults to device A cannot
    // perturb device B's schedule.
    const uint64_t stream_seed =
        seed_ * 0x9E3779B97F4A7C15ULL + devices_.size() + 1;
    devices_.emplace_back(DeviceState(stream_seed));
  }
  return devices_[static_cast<size_t>(device)];
}

const FaultInjector::DeviceState* FaultInjector::FindState(int device) const {
  if (device < 0 || static_cast<size_t>(device) >= devices_.size()) {
    return nullptr;
  }
  return &devices_[static_cast<size_t>(device)];
}

void FaultInjector::KillDeviceAt(int device, SimTime when) {
  StateFor(device).spec.die_at = when;
}

void FaultInjector::SetFailSlow(int device, double latency_mult) {
  StateFor(device).spec.latency_mult = latency_mult;
}

void FaultInjector::SetFailSlowRamp(int device, double latency_mult,
                                    SimTime start, SimTime duration) {
  DeviceState& state = StateFor(device);
  state.spec.latency_mult = latency_mult;
  state.spec.ramp_start = start;
  state.spec.ramp_duration = duration;
}

void FaultInjector::SetFailSlowDuty(int device, double latency_mult,
                                    SimTime period, SimTime on) {
  DeviceState& state = StateFor(device);
  state.spec.latency_mult = latency_mult;
  state.spec.duty_period = period;
  state.spec.duty_on = on;
}

void FaultInjector::SetFailSlowChannel(int device, int channel,
                                       double latency_mult) {
  StateFor(device).channel_mult[channel] = latency_mult;
}

void FaultInjector::SetErrorRates(int device, double read_prob,
                                  double write_prob) {
  DeviceState& state = StateFor(device);
  state.spec.read_error_prob = read_prob;
  state.spec.write_error_prob = write_prob;
}

void FaultInjector::AddWriteErrors(int device, int count) {
  StateFor(device).pending_write_errors += count;
}

void FaultInjector::AddReadErrors(int device, int count) {
  StateFor(device).pending_read_errors += count;
}

void FaultInjector::ClearDeviceFaults(int device) {
  if (FindState(device) == nullptr) {
    return;
  }
  DeviceState& state = StateFor(device);
  state.spec = DeviceFaultSpec{};
  state.channel_mult.clear();
  state.pending_write_errors = 0;
  state.pending_read_errors = 0;
}

bool FaultInjector::IsDead(int device, SimTime now) const {
  const DeviceState* state = FindState(device);
  return state != nullptr && state->spec.die_at != 0 &&
         now >= state->spec.die_at;
}

Status FaultInjector::OnIo(int device, IoKind kind, SimTime now) {
  if (FindState(device) == nullptr) {
    return OkStatus();
  }
  // Note: only this device's state is touched from here on — the hook is
  // called concurrently from different shard threads for different devices.
  DeviceState& state = StateFor(device);
  if (IsDead(device, now)) {
    state.stats.unavailable_rejections++;
    return UnavailableError("device " + std::to_string(device) + " dead");
  }
  if (kind == IoKind::kWrite) {
    if (state.pending_write_errors > 0) {
      state.pending_write_errors--;
      state.stats.injected_write_errors++;
      return DeviceErrorStatus("scripted write error");
    }
    if (state.spec.write_error_prob > 0.0 &&
        state.rng.Chance(state.spec.write_error_prob)) {
      state.stats.injected_write_errors++;
      return DeviceErrorStatus("transient write error");
    }
  } else {
    if (state.pending_read_errors > 0) {
      state.pending_read_errors--;
      state.stats.injected_read_errors++;
      return DeviceErrorStatus("scripted read error");
    }
    if (state.spec.read_error_prob > 0.0 &&
        state.rng.Chance(state.spec.read_error_prob)) {
      state.stats.injected_read_errors++;
      return DeviceErrorStatus("transient read error");
    }
  }
  return OkStatus();
}

SimTime FaultInjector::StretchCompletion(int device, int channel, SimTime done,
                                         SimTime now) const {
  const DeviceState* state = FindState(device);
  if (state == nullptr) {
    return done;
  }
  double mult = state->spec.EffectiveMult(now);
  if (channel >= 0) {
    auto it = state->channel_mult.find(channel);
    if (it != state->channel_mult.end()) {
      mult *= it->second;
    }
  }
  if (mult <= 1.0) {
    return done;
  }
  const SimTime span = done > now ? done - now : 0;
  const SimTime stretched = static_cast<SimTime>(static_cast<double>(span) * mult);
  const SimTime excess = stretched > span ? stretched - span : 0;
  // Serialize the excess through the device's single recovery lane: the
  // nominal span keeps the device's internal parallelism, but the retry/
  // re-read work a gray device burns per I/O does not pipeline, so
  // concurrent I/O convoys behind it.
  const SimTime lane_free =
      done > state->slow_busy_until ? done : state->slow_busy_until;
  state->slow_busy_until = lane_free + excess;
  return state->slow_busy_until;
}

FaultStats FaultInjector::stats() const {
  FaultStats total;
  for (const DeviceState& state : devices_) {
    total.injected_read_errors += state.stats.injected_read_errors;
    total.injected_write_errors += state.stats.injected_write_errors;
    total.unavailable_rejections += state.stats.unavailable_rejections;
  }
  return total;
}

}  // namespace biza
