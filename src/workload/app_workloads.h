// Application-level workload models for the Fig. 13 experiments.
//
// The paper runs F2FS + filebench and RocksDB (on F2FS) + db_bench on each
// AFA. We model the BLOCK STREAM such stacks emit instead of porting the
// applications (see DESIGN.md §1): F2FS is log-structured, so data lands as
// large sequential segment writes in a rotating log, while a small, hot
// metadata region (NAT/SIT, ~two zones in the paper) takes frequent 4 KiB
// random overwrites. Reads follow the personality of the benchmark.
//
// filebench personalities (§5.3): randomwrite (write-dominated), fileserver
// and oltp (mixed), webserver (read-dominated, 4.8% writes).
// db_bench workloads: fillseq (sequential key order -> nearly pure
// sequential log), fillrandom (random keys -> log writes + compaction
// rewrites), fillseekseq (fill then seek-reads).
#ifndef BIZA_SRC_WORKLOAD_APP_WORKLOADS_H_
#define BIZA_SRC_WORKLOAD_APP_WORKLOADS_H_

#include <string>

#include "src/workload/workload.h"

namespace biza {

struct AppProfile {
  std::string name;
  double write_ratio = 0.5;
  uint64_t segment_blocks = 512;    // F2FS segment (2 MiB) per log append
  uint64_t write_blocks = 16;       // blocks per data write request
  uint64_t read_blocks = 16;
  double metadata_fraction = 0.15;  // fraction of writes hitting metadata
  uint64_t metadata_blocks = 1024;  // hot metadata region (4 MiB)
  double compaction_fraction = 0.0; // extra log rewrites (LSM compaction)
  uint64_t footprint_blocks = 1 << 18;
  uint64_t seed = 7;

  // filebench personalities.
  static AppProfile FilebenchRandomwrite();
  static AppProfile FilebenchFileserver();
  static AppProfile FilebenchOltp();
  static AppProfile FilebenchWebserver();
  // db_bench workloads (RocksDB on F2FS).
  static AppProfile DbBenchFillseq();
  static AppProfile DbBenchFillrandom();
  static AppProfile DbBenchFillseekseq();
};

// Emits the block stream of an F2FS-like log-structured FS running the
// given application profile.
class AppWorkload : public WorkloadGenerator {
 public:
  explicit AppWorkload(const AppProfile& profile);

  BlockRequest Next() override;
  std::string name() const override { return profile_.name; }

 private:
  AppProfile profile_;
  Rng rng_;
  uint64_t log_cursor_;        // rotating log head (after metadata region)
  uint64_t read_cursor_ = 0;   // for scan-style reads
};

}  // namespace biza

#endif  // BIZA_SRC_WORKLOAD_APP_WORKLOADS_H_
