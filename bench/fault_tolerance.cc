// Fault tolerance: write latency percentiles (p50/p99/p99.9) and throughput
// for BIZA under the fault-plane scenarios the paper's AFA setting implies
// but does not measure:
//
//   healthy    — no faults (baseline)
//   fail-slow  — one member completes media work 4x slower (gray failure)
//   degraded   — one member dead: chunk writes skip it (parity-only
//                phantoms), reads of its chunks reconstruct from survivors
//   rebuild    — one member hot-swapped for a fresh spare; the online
//                rebuild sweep competes with foreground I/O
//
// Expected shape: fail-slow inflates the tail far more than the median (the
// slow member gates one in n stripes); degraded mode costs extra reads on
// reconstruction but keeps writes near-healthy (phantom chunks skip one
// program); rebuild adds migration traffic throttled to stay off the
// foreground path's tail.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace biza {
namespace {

enum class Mode { kHealthy, kFailSlow, kDegraded, kRebuild };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kHealthy:
      return "healthy";
    case Mode::kFailSlow:
      return "fail-slow(4x)";
    case Mode::kDegraded:
      return "degraded";
    case Mode::kRebuild:
      return "rebuild";
  }
  return "?";
}

struct FtResult {
  double write_mbps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double degraded_writes = 0;
  double degraded_reads = 0;
  double rebuild_blocks = 0;
};

FtResult RunCase(Mode mode, uint64_t seed) {
  Simulator sim;
  PlatformConfig config = BenchConfig(3 + seed);
  if (mode == Mode::kFailSlow) {
    config.faults.Device(1).latency_mult = 4.0;
  }
  auto platform = Platform::Create(&sim, PlatformKind::kBiza, config);
  BlockTarget* target = platform->block();

  // Steady-state data set so degraded reads and the rebuild sweep have real
  // content to reconstruct.
  const uint64_t footprint = target->capacity_blocks() / 2;
  Driver::Fill(&sim, target, footprint, 64);

  if (mode == Mode::kDegraded || mode == Mode::kRebuild) {
    platform->biza()->SetDeviceFailed(1, true);
  }
  if (mode == Mode::kRebuild) {
    ZnsDevice* spare = platform->AddSpareZnsDevice(&sim);
    const Status s = platform->biza()->ReplaceDevice(1, spare);
    if (!s.ok()) {
      std::fprintf(stderr, "ReplaceDevice: %s\n", s.ToString().c_str());
    }
  }

  // Mixed 16 KiB random updates over the filled footprint, measured while
  // the fault (and, for rebuild, the sweep) is active.
  MicroWorkload workload(false, true, 4, footprint, 17 + seed);
  Driver driver(&sim, target, &workload, /*iodepth=*/32);
  const DriverReport report = driver.Run(20000, 2 * kSecond);

  FtResult result;
  result.write_mbps = report.WriteMBps();
  result.p50_us = static_cast<double>(report.write_latency.Percentile(50)) / 1e3;
  result.p99_us = static_cast<double>(report.write_latency.Percentile(99)) / 1e3;
  result.p999_us =
      static_cast<double>(report.write_latency.Percentile(99.9)) / 1e3;
  const BizaStats& stats = platform->biza()->stats();
  result.degraded_writes = static_cast<double>(stats.degraded_writes);
  result.degraded_reads = static_cast<double>(stats.degraded_reads);
  if (mode == Mode::kRebuild) {
    sim.RunUntilIdle();  // drain the sweep for the migration count
    result.rebuild_blocks =
        static_cast<double>(platform->biza()->rebuild().chunks_migrated);
  }
  RecordSimEvents(sim);
  return result;
}

void Run() {
  PrintTitle("Fault tolerance",
             "BIZA write tails under fail-slow, degraded mode, and rebuild");
  PrintPaperNote(
      "fail-slow gates the tail, not the median; degraded writes stay "
      "near-healthy (phantom chunks skip one program); the throttled "
      "rebuild sweep bounds its tail impact");

  const std::vector<Mode> modes = {Mode::kHealthy, Mode::kFailSlow,
                                   Mode::kDegraded, Mode::kRebuild};
  const int nseeds = BenchSeeds();
  std::printf("%d seeds per mode, mean±stddev\n\n", nseeds);

  std::vector<std::function<FtResult()>> jobs;
  for (Mode mode : modes) {
    for (int s = 0; s < nseeds; ++s) {
      jobs.push_back(
          [mode, s]() { return RunCase(mode, static_cast<uint64_t>(s)); });
    }
  }
  const std::vector<FtResult> results = RunExperiments(std::move(jobs));

  std::printf("%-14s %16s %14s %14s %14s %11s %11s %9s\n", "mode",
              "write MB/s", "p50 (us)", "p99 (us)", "p99.9 (us)", "degr_wr",
              "degr_rd", "rebuilt");
  size_t job_index = 0;
  for (Mode mode : modes) {
    std::vector<double> mbps, p50, p99, p999, dw, dr, rb;
    for (int s = 0; s < nseeds; ++s) {
      const FtResult& r = results[job_index++];
      mbps.push_back(r.write_mbps);
      p50.push_back(r.p50_us);
      p99.push_back(r.p99_us);
      p999.push_back(r.p999_us);
      dw.push_back(r.degraded_writes);
      dr.push_back(r.degraded_reads);
      rb.push_back(r.rebuild_blocks);
    }
    const SeedStat m = MeanStddev(mbps);
    const SeedStat a = MeanStddev(p50);
    const SeedStat b = MeanStddev(p99);
    const SeedStat c = MeanStddev(p999);
    std::printf("%-14s %9.0f±%-5.0f %9.0f±%-4.0f %9.0f±%-4.0f %9.0f±%-4.0f "
                "%11.0f %11.0f %9.0f\n",
                ModeName(mode), m.mean, m.stddev, a.mean, a.stddev, b.mean,
                b.stddev, c.mean, c.stddev, MeanStddev(dw).mean,
                MeanStddev(dr).mean, MeanStddev(rb).mean);
  }
}

}  // namespace
}  // namespace biza

int main() {
  biza::BenchMetricScope metrics("fault_tolerance");
  biza::Run();
  return 0;
}
