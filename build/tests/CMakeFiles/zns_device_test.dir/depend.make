# Empty dependencies file for zns_device_test.
# This may be replaced when dependencies are built.
