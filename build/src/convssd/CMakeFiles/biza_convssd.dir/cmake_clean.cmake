file(REMOVE_RECURSE
  "CMakeFiles/biza_convssd.dir/conv_ssd.cc.o"
  "CMakeFiles/biza_convssd.dir/conv_ssd.cc.o.d"
  "libbiza_convssd.a"
  "libbiza_convssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biza_convssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
