// Table 6: workload characteristics of the synthetic production-trace
// models — measured from the generators and compared with the paper's
// targets (write ratio, average request sizes) plus the reuse-distance
// figures §5.4 quotes for casa and tencent.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/trace_stats.h"

namespace biza {
namespace {

void Run() {
  PrintTitle("Table 6", "workload characteristics (generated vs paper)");
  PrintPaperNote(
      "write ratios 3.0%-98.6%, write sizes 4-121.3 KB, read sizes "
      "4-64 KB; casa: 91.7% of chunks reuse within 56 MB; tencent: 90.2% "
      "beyond 56 MB");

  std::printf("%-10s %16s %18s %18s %14s\n", "trace", "write%% (tgt)",
              "avg wr KB (tgt)", "avg rd KB (tgt)", "reuse<56MB");
  for (const TraceProfile& profile : TraceProfile::AllTable6()) {
    SyntheticTrace trace(profile);
    TraceStats stats;
    for (int i = 0; i < 150000; ++i) {
      stats.Observe(trace.Next());
    }
    std::printf("%-10s %7.1f (%5.1f) %9.1f (%6.1f) %9.1f (%6.1f) %12.1f%%\n",
                profile.name.c_str(), stats.write_ratio() * 100.0,
                profile.write_ratio * 100.0, stats.avg_write_kb(),
                static_cast<double>(profile.avg_write_blocks * 4),
                stats.avg_read_kb(),
                static_cast<double>(profile.avg_read_blocks * 4),
                stats.ReuseCdfAt(56 * kMiB) * 100.0);
  }
}

}  // namespace
}  // namespace biza

int main() {
  biza::Run();
  return 0;
}
