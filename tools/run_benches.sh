#!/usr/bin/env bash
# Builds the Release tree and runs the benchmark suite, recording performance
# numbers into BENCH_sim.json at the repo root:
#
#   - bench/sim_perf (google-benchmark): event-queue throughput, old vs new
#     implementation, median of --repetitions runs.
#   - every figure/table bench binary: each prints one BENCH_METRIC JSON line
#     (wall-clock seconds, simulated events, events/sec) via BenchMetricScope.
#   - a reference afa_bench --stats run: its BENCH_HISTOGRAMS line (latency
#     histogram summaries per layer: p50/p99/p99.9/max) lands in .histograms
#     so latency-shape regressions show up next to the throughput numbers.
#   - sharded-PDES reference runs: afa_bench --full-geometry at --shards=1
#     and --shards=4; compare_bench.py gates each shard count as its own
#     series (bench:afa_fullgeo vs bench:afa_fullgeo@shards=4).
#
# Usage:
#   tools/run_benches.sh             # sim_perf + all figure/table benches
#   tools/run_benches.sh --quick     # sim_perf only (seconds, not minutes)
#
# Honors BIZA_THREADS for the parallel experiment runner inside the benches.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-release"
out_json="${repo_root}/BENCH_sim.json"
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" >/dev/null

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

echo "== sim_perf (event-queue microbenchmark) =="
"${build_dir}/bench/sim_perf" \
  --benchmark_repetitions=5 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="${tmp_dir}/sim_perf.json" \
  --benchmark_out_format=json

metric_lines="${tmp_dir}/metrics.jsonl"
series_lines="${tmp_dir}/series.jsonl"
: > "${metric_lines}"
: > "${series_lines}"
if [[ "${quick}" -eq 1 && -f "${out_json}" ]]; then
  # Quick mode refreshes sim_perf only; keep the last full run's metrics.
  jq -r '.bench_metrics[]? | @json' "${out_json}" >> "${metric_lines}" || true
  jq -r '.frontend_series[]? | @json' "${out_json}" >> "${series_lines}" || true
fi
histograms_json="${tmp_dir}/histograms.json"
echo '{}' > "${histograms_json}"
if [[ "${quick}" -eq 1 && -f "${out_json}" ]]; then
  jq '.histograms // {}' "${out_json}" > "${histograms_json}" || true
fi
if [[ "${quick}" -eq 0 ]]; then
  for bench in "${build_dir}"/bench/*; do
    name="$(basename "${bench}")"
    [[ -f "${bench}" && -x "${bench}" ]] || continue
    case "${name}" in
      sim_perf|micro_components) continue ;;  # google-benchmark binaries
    esac
    echo "== ${name} =="
    "${bench}" | tee "${tmp_dir}/${name}.out" | grep '^BENCH_METRIC ' \
      | sed 's/^BENCH_METRIC //' >> "${metric_lines}" || true
    # Per-series machine-readable lines (NVMe frontend sweep, host-buffer
    # endurance curve): tagged with their kind so compare_bench.py can
    # gate each series on its deterministic metric.
    grep -E '^(NVME_FRONTEND|HOSTBUF_ENDURANCE) ' "${tmp_dir}/${name}.out" \
      | while read -r kind json; do
          jq -c --arg kind "${kind}" '. + {series_kind: $kind}' <<<"${json}"
        done >> "${series_lines}" || true
  done

  # Reference latency-histogram snapshot: one fixed BIZA run with the stat
  # registry attached. The BENCH_HISTOGRAMS line carries per-layer latency
  # summaries (p50/p99/p99.9/max in us) into .histograms.
  echo "== afa_bench --stats (latency histograms) =="
  "${build_dir}/tools/afa_bench" --platform=BIZA --workload=casa \
    --requests=20000 --seconds=1 --stats \
    | tee "${tmp_dir}/afa_bench_stats.out" | grep '^BENCH_HISTOGRAMS ' \
    | sed 's/^BENCH_HISTOGRAMS //' > "${histograms_json}" || true

  # Sharded-PDES reference: one full-geometry BIZA run per shard count.
  # compare_bench.py keys bench_metrics entries by bench@shards=N, so the
  # single-clock and sharded engines gate separately; the shards=4 run only
  # shows a speedup on a box with >= 4 spare cores (BIZA_SIM_SHARDS also
  # selects sharding for any other bench or test binary).
  for sh in 1 4; do
    echo "== afa_bench --full-geometry --shards=${sh} (sharded PDES) =="
    "${build_dir}/tools/afa_bench" --platform=BIZA --workload=casa \
      --full-geometry --requests=100000 --seconds=1 --shards="${sh}" \
      --bench-metric=afa_fullgeo \
      | tee "${tmp_dir}/afa_fullgeo_s${sh}.out" | grep '^BENCH_METRIC ' \
      | sed 's/^BENCH_METRIC //' >> "${metric_lines}" || true
  done
fi

jq -n \
  --slurpfile perf "${tmp_dir}/sim_perf.json" \
  --slurpfile metrics <(cat "${metric_lines}" 2>/dev/null; true) \
  --slurpfile fseries <(cat "${series_lines}" 2>/dev/null; true) \
  --slurpfile hist "${histograms_json}" \
  '{
     generated_by: "tools/run_benches.sh",
     sim_perf: ($perf[0].benchmarks
                | map(select(.run_type == "aggregate" and
                             .aggregate_name == "median")
                      | {name, items_per_second})),
     bench_metrics: $metrics,
     frontend_series: $fseries,
     histograms: ($hist[0] // {})
   }' > "${out_json}"

echo "wrote ${out_json}"
jq '.sim_perf' "${out_json}"
