file(REMOVE_RECURSE
  "CMakeFiles/biza_array_test.dir/biza_array_test.cc.o"
  "CMakeFiles/biza_array_test.dir/biza_array_test.cc.o.d"
  "biza_array_test"
  "biza_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biza_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
