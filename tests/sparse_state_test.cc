// Tests of the sparse zone/FTL state containers and the batched NAND
// pipeline: chunk allocation and reclamation, hashed-table behaviour across
// rehashes, OOB scans over lazily-allocated zones, run-API equivalence with
// per-page command loops, and dense-vs-sparse / batched-vs-legacy
// behavioural equivalence of whole devices.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/biza/biza_array.h"
#include "src/common/rng.h"
#include "src/common/sparse_array.h"
#include "src/common/units.h"
#include "src/convssd/conv_ssd.h"
#include "src/nand/nand_backend.h"
#include "src/sim/simulator.h"
#include "src/testbed/platforms.h"
#include "src/workload/driver.h"
#include "src/workload/workload.h"
#include "src/zns/zns_device.h"
#include "tests/test_util.h"

namespace biza {
namespace {

// ---------------------------------------------------------------------------
// ChunkedArray

TEST(ChunkedArray, ReadsOfUnallocatedChunksSeeFillValue) {
  ChunkedArray<uint64_t> arr(/*size=*/10000, /*chunk_size=*/1024, /*fill=*/42);
  EXPECT_EQ(arr.Get(0), 42u);
  EXPECT_EQ(arr.Get(9999), 42u);
  EXPECT_EQ(arr.allocated_chunks(), 0u);
  EXPECT_EQ(arr.Peek(123), nullptr);
}

TEST(ChunkedArray, MutAllocatesOnlyTheTouchedChunk) {
  ChunkedArray<uint64_t> arr(/*size=*/100000, /*chunk_size=*/1024, /*fill=*/0);
  // allocated_bytes() carries the chunk-pointer table as a constant base.
  const uint64_t base = arr.allocated_bytes();
  arr.Mut(50000) = 7;
  EXPECT_EQ(arr.allocated_chunks(), 1u);
  EXPECT_EQ(arr.Get(50000), 7u);
  ASSERT_NE(arr.Peek(50000), nullptr);
  EXPECT_EQ(*arr.Peek(50000), 7u);
  // Neighbours in the same chunk read the fill value, not garbage.
  EXPECT_EQ(arr.Get(50001), 0u);
  const uint64_t one_chunk = arr.allocated_bytes() - base;
  EXPECT_GT(one_chunk, 0u);
  arr.Mut(0) = 9;
  EXPECT_EQ(arr.allocated_chunks(), 2u);
  EXPECT_EQ(arr.allocated_bytes(), base + 2 * one_chunk);
}

TEST(ChunkedArray, ClearFreesEverything) {
  ChunkedArray<uint64_t> arr(/*size=*/100000, /*chunk_size=*/1024, /*fill=*/5);
  for (uint64_t i = 0; i < 100000; i += 1000) {
    arr.Mut(i) = i;
  }
  EXPECT_GT(arr.allocated_chunks(), 0u);
  arr.Clear();
  EXPECT_EQ(arr.allocated_chunks(), 0u);
  EXPECT_EQ(arr.Get(0), 5u);
}

TEST(ChunkedArray, ClearRangeFreesContainedChunksAndResetsPartials) {
  ChunkedArray<uint64_t> arr(/*size=*/100000, /*chunk_size=*/1024, /*fill=*/0);
  for (uint64_t i = 0; i < 100000; ++i) {
    arr.Mut(i) = i + 1;
  }
  const uint64_t all_chunks = arr.allocated_chunks();
  // Clear a large interior range: fully-covered chunks must be freed, the
  // straddled boundary chunks kept but reset to the fill value inside the
  // range and untouched outside it.
  arr.ClearRange(10, 90000);
  EXPECT_LT(arr.allocated_chunks(), all_chunks);
  EXPECT_EQ(arr.Get(9), 10u);     // below range: untouched
  EXPECT_EQ(arr.Get(10), 0u);     // range start: fill value
  EXPECT_EQ(arr.Get(50000), 0u);  // interior: chunk freed, reads fill
  EXPECT_EQ(arr.Get(89999), 0u);  // range end - 1: fill value
  EXPECT_EQ(arr.Get(90000), 90001u);  // past range: untouched
}

TEST(ChunkedArray, SkipUnallocatedHopsOverHoles) {
  ChunkedArray<uint64_t> arr(/*size=*/100000, /*chunk_size=*/1024, /*fill=*/0);
  arr.Mut(0) = 1;  // chunk 0 allocated
  // From inside an allocated chunk there is nothing to skip.
  EXPECT_EQ(arr.SkipUnallocated(5), 5u);
  // All later chunks are holes: the scan lands at size().
  EXPECT_EQ(arr.SkipUnallocated(99999), 100000u);
  arr.Mut(99999) = 2;  // allocate the last chunk
  const uint64_t hop = arr.SkipUnallocated(70000);
  EXPECT_GT(hop, 70000u);
  EXPECT_LE(hop, 99999u);
  EXPECT_NE(arr.Peek(hop), nullptr);
}

// ---------------------------------------------------------------------------
// SparseTable

TEST(SparseTable, AbsentKeysReadDefaultValue) {
  SparseTable<uint64_t> table;
  EXPECT_EQ(table.Find(12345), nullptr);
  EXPECT_EQ(table.Get(12345), 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SparseTable, SetFindAndOverwrite) {
  SparseTable<uint64_t> table;
  table.Set(7, 100);
  table.Set(7, 200);
  ASSERT_NE(table.Find(7), nullptr);
  EXPECT_EQ(*table.Find(7), 200u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SparseTable, SurvivesRehashWithScatteredKeys) {
  SparseTable<uint64_t> table;
  // Keys drawn from a vast space (the BMT regime: sparse lbn -> pa), enough
  // inserts to force several rehashes.
  constexpr uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) {
    const uint64_t key = i * 0x9E3779B97F4A7C15ULL;
    table.Set(key, i + 1);
  }
  EXPECT_EQ(table.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    const uint64_t key = i * 0x9E3779B97F4A7C15ULL;
    EXPECT_EQ(table.Get(key), i + 1) << "key index " << i;
  }
  // ForEach visits every entry exactly once.
  uint64_t visited = 0;
  table.ForEach([&](uint64_t, uint64_t& v) {
    ++visited;
    EXPECT_GT(v, 0u);
  });
  EXPECT_EQ(visited, kN);
  EXPECT_GT(table.allocated_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// ZNS sparse zone state

ZnsConfig SmallZns() {
  ZnsConfig config = ZnsConfig::Zn540(/*num_zones=*/16,
                                      /*zone_capacity_blocks=*/4096);
  return config;
}

TEST(ZnsSparseState, ZoneResetReclaimsChunkState) {
  Simulator sim;
  ZnsDevice dev(&sim, SmallZns());
  const uint64_t baseline = dev.ResidentStateBytes();

  std::vector<uint64_t> patterns(1024);
  for (uint64_t i = 0; i < patterns.size(); ++i) {
    patterns[i] = 0xA000 + i;
  }
  ASSERT_TRUE(ZnsWriteSync(&sim, &dev, /*zone=*/3, /*offset=*/0, patterns).ok());
  const uint64_t written = dev.ResidentStateBytes();
  EXPECT_GT(written, baseline);

  ASSERT_TRUE(dev.ResetZone(3).ok());
  sim.RunUntilIdle();
  EXPECT_EQ(dev.ResidentStateBytes(), baseline);

  // The recycled zone is reusable: rewrite and read back fresh content.
  for (auto& p : patterns) {
    p ^= 0xFFFF;
  }
  ASSERT_TRUE(ZnsWriteSync(&sim, &dev, /*zone=*/3, /*offset=*/0, patterns).ok());
  auto result = ZnsReadSync(&sim, &dev, 3, 0, patterns.size());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->patterns, patterns);
}

TEST(ZnsSparseState, OobScanOverLazilyAllocatedZone) {
  Simulator sim;
  ZnsDevice dev(&sim, SmallZns());
  const uint64_t cap = dev.config().zone_capacity_blocks;

  // An untouched zone has no written candidates at all.
  EXPECT_EQ(dev.NextWrittenCandidate(/*zone=*/5, /*from=*/0), cap);

  // Write a short prefix with OOB metadata into zone 2.
  constexpr uint64_t kPrefix = 64;
  std::vector<uint64_t> patterns(kPrefix);
  std::vector<OobRecord> oobs(kPrefix);
  for (uint64_t i = 0; i < kPrefix; ++i) {
    patterns[i] = i + 1;
    oobs[i].lbn = 1000 + i;
    oobs[i].sn = i;
  }
  ASSERT_TRUE(ZnsWriteSync(&sim, &dev, 2, 0, patterns, oobs).ok());

  // The scan starts at the written prefix and every prefix block's OOB is
  // readable; offsets past the high-water mark are not.
  EXPECT_EQ(dev.NextWrittenCandidate(2, 0), 0u);
  for (uint64_t off = 0; off < kPrefix; ++off) {
    auto oob = dev.ReadOobSync(2, off);
    ASSERT_TRUE(oob.ok()) << "offset " << off;
    EXPECT_EQ(oob->lbn, 1000 + off);
  }
  EXPECT_FALSE(dev.ReadOobSync(2, kPrefix).ok());
  // Past the prefix, the candidate scan hops to the zone capacity in O(few)
  // chunk strides instead of probing each of the remaining blocks.
  EXPECT_GE(dev.NextWrittenCandidate(2, kPrefix), kPrefix);
}

// ---------------------------------------------------------------------------
// NAND run-API equivalence: a run is defined as exactly N back-to-back
// per-page commands, so per-page completion times must match bit-for-bit.

TEST(NandRunApi, WriteRunMatchesPerPageWrites) {
  NandTimingConfig timing;
  Simulator sim_a, sim_b;
  NandBackend loop(&sim_a, timing);
  NandBackend run(&sim_b, timing);
  constexpr uint64_t kPages = 37;
  constexpr uint64_t kPageBytes = 4096;

  std::vector<SimTime> loop_done;
  for (uint64_t p = 0; p < kPages; ++p) {
    loop_done.push_back(loop.Write(/*channel=*/2, kPageBytes));
  }
  std::vector<SimTime> run_done;
  const SimTime last = run.WriteRun(2, kPages, kPageBytes, &run_done);

  EXPECT_EQ(run_done, loop_done);
  EXPECT_EQ(last, loop_done.back());
  EXPECT_EQ(run.channel_stats(2).bytes_written,
            loop.channel_stats(2).bytes_written);
  EXPECT_EQ(run.channel_stats(2).bus_busy_ns, loop.channel_stats(2).bus_busy_ns);
}

TEST(NandRunApi, ReadRunMatchesPerPageReads) {
  NandTimingConfig timing;
  Simulator sim_a, sim_b;
  NandBackend loop(&sim_a, timing);
  NandBackend run(&sim_b, timing);
  constexpr uint64_t kPages = 23;
  constexpr uint64_t kPageBytes = 4096;

  std::vector<SimTime> loop_done;
  for (uint64_t p = 0; p < kPages; ++p) {
    loop_done.push_back(loop.Read(/*channel=*/0, kPageBytes));
  }
  std::vector<SimTime> run_done;
  const SimTime last = run.ReadRun(0, kPages, kPageBytes, &run_done);

  EXPECT_EQ(run_done, loop_done);
  EXPECT_EQ(last, loop_done.back());
  EXPECT_EQ(run.channel_stats(0).bytes_read, loop.channel_stats(0).bytes_read);
}

TEST(NandRunApi, ProgramRunMatchesPerPageBackgroundPrograms) {
  NandTimingConfig timing;
  Simulator sim_a, sim_b;
  NandBackend loop(&sim_a, timing);
  NandBackend run(&sim_b, timing);
  constexpr uint64_t kPages = 17;
  constexpr uint64_t kPageBytes = 4096;

  SimTime loop_last = 0;
  for (uint64_t p = 0; p < kPages; ++p) {
    loop_last = loop.BackgroundProgram(/*channel=*/5, kPageBytes);
  }
  EXPECT_EQ(run.ProgramRun(5, kPages, kPageBytes), loop_last);
}

TEST(NandRunApi, RunInterleavesWithSubsequentCommandsLikeALoop) {
  // A run must leave the channel/die resources in exactly the state a
  // per-page loop would: the *next* command after the run sees the same
  // completion time either way.
  NandTimingConfig timing;
  Simulator sim_a, sim_b;
  NandBackend loop(&sim_a, timing);
  NandBackend run(&sim_b, timing);

  for (uint64_t p = 0; p < 11; ++p) {
    loop.Write(1, 4096);
  }
  const SimTime loop_next = loop.Read(1, 4096);

  run.WriteRun(1, 11, 4096);
  EXPECT_EQ(run.Read(1, 4096), loop_next);
}

// ---------------------------------------------------------------------------
// Dense-vs-sparse equivalence: the storage representation must not change
// behaviour — completion timing and content are bit-identical.

TEST(DenseSparseEquivalence, ZnsDeviceTimingAndContentIdentical) {
  ZnsConfig sparse_config = SmallZns();
  ZnsConfig dense_config = SmallZns();
  dense_config.dense_state = true;

  Simulator sim_sparse, sim_dense;
  ZnsDevice sparse(&sim_sparse, sparse_config);
  ZnsDevice dense(&sim_dense, dense_config);

  for (auto* pair : {&sparse, &dense}) {
    Simulator* sim = pair == &sparse ? &sim_sparse : &sim_dense;
    for (uint32_t zone = 0; zone < 4; ++zone) {
      std::vector<uint64_t> patterns(512);
      for (uint64_t i = 0; i < patterns.size(); ++i) {
        patterns[i] = zone * 10000 + i;
      }
      ASSERT_TRUE(ZnsWriteSync(sim, pair, zone, 0, patterns).ok());
    }
    ASSERT_TRUE(pair->ResetZone(1).ok());
    sim->RunUntilIdle();
  }

  // Same workload, same seed: the event timelines must be identical.
  EXPECT_EQ(sim_sparse.Now(), sim_dense.Now());
  EXPECT_EQ(sim_sparse.fired_events(), sim_dense.fired_events());

  auto a = ZnsReadSync(&sim_sparse, &sparse, 3, 0, 512);
  auto b = ZnsReadSync(&sim_dense, &dense, 3, 0, 512);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->patterns, b->patterns);

  // And the point of the sparse representation: a dense device pays for
  // raw capacity up front, the sparse one only for what was written.
  EXPECT_LT(sparse.ResidentStateBytes(), dense.ResidentStateBytes());
}

// fig10-style short run: a full BIZA array over dense vs sparse member
// devices produces a byte-identical DriverReport.
DriverReport RunShortBizaMicro(bool dense) {
  PlatformConfig config;
  config.zns = ZnsConfig::Zn540(/*num_zones=*/48, /*zone_capacity_blocks=*/1024);
  config.zns.dense_state = dense;
  config.conv.dense_state = dense;
  config.MatchConvCapacity();
  config.seed = 11;

  Simulator sim;
  auto platform = Platform::Create(&sim, PlatformKind::kBiza, config);
  MicroWorkload workload(/*sequential=*/false, /*write=*/true,
                         /*request_blocks=*/16,
                         platform->block()->capacity_blocks(), /*seed=*/7);
  Driver driver(&sim, platform->block(), &workload, /*iodepth=*/16);
  return driver.Run(/*max_requests=*/4000, /*max_duration=*/600 * kSecond);
}

TEST(DenseSparseEquivalence, BizaDriverRunByteIdentical) {
  const DriverReport sparse = RunShortBizaMicro(/*dense=*/false);
  const DriverReport dense = RunShortBizaMicro(/*dense=*/true);
  EXPECT_GT(sparse.requests_completed, 0u);
  EXPECT_EQ(sparse.bytes_written, dense.bytes_written);
  EXPECT_EQ(sparse.bytes_read, dense.bytes_read);
  EXPECT_EQ(sparse.requests_completed, dense.requests_completed);
  EXPECT_EQ(sparse.elapsed_ns, dense.elapsed_ns);
  EXPECT_EQ(sparse.write_latency.Percentile(50),
            dense.write_latency.Percentile(50));
  EXPECT_EQ(sparse.write_latency.Percentile(99.9),
            dense.write_latency.Percentile(99.9));
}

// ---------------------------------------------------------------------------
// Batched-vs-legacy GC equivalence: batching changes the event budget, not
// what lands on flash. Content must match; accounting stays equal where the
// semantics are unchanged.

TEST(BatchedGcEquivalence, ConvSsdContentAndAccountingMatchLegacy) {
  ConvSsdConfig batched_config;
  batched_config.capacity_blocks = 16384;
  batched_config.pages_per_flash_block = 256;
  batched_config.over_provision = 0.15;
  batched_config.dispatch_jitter_ns = 0;
  ConvSsdConfig legacy_config = batched_config;
  batched_config.batched_gc_io = true;
  legacy_config.batched_gc_io = false;

  Simulator sim_batched, sim_legacy;
  ConvSsd batched(&sim_batched, batched_config);
  ConvSsd legacy(&sim_legacy, legacy_config);

  // Random overwrites confined to half the capacity: victims retain live
  // pages, so GC must migrate (sequential overwrites would only produce
  // fully-dead victims and the batched path would never run).
  auto drive = [](Simulator* sim, ConvSsd* dev) {
    Rng rng(5);
    for (uint64_t req = 0; req < 1600; ++req) {
      const uint64_t lbn = rng.Uniform(8192 / 64) * 64;
      std::vector<uint64_t> patterns(64);
      for (uint64_t i = 0; i < 64; ++i) {
        patterns[i] = req * 1000000 + lbn + i;
      }
      Status out = InternalError("never completed");
      dev->SubmitWrite(lbn, std::move(patterns),
                       [&out](const Status& s) { out = s; });
      sim->RunUntilIdle();
      ASSERT_TRUE(out.ok());
    }
  };
  drive(&sim_batched, &batched);
  drive(&sim_legacy, &legacy);

  ASSERT_GT(batched.stats().flash_programmed_blocks,
            batched.stats().host_written_blocks)
      << "workload did not trigger GC; equivalence check is vacuous";

  for (uint64_t lbn = 0; lbn < 8192; lbn += 509) {
    auto a = batched.ReadPatternSync(lbn);
    auto b = legacy.ReadPatternSync(lbn);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "lbn " << lbn;
  }
  EXPECT_EQ(batched.stats().host_written_blocks,
            legacy.stats().host_written_blocks);
  EXPECT_EQ(batched.stats().flash_programmed_blocks,
            legacy.stats().flash_programmed_blocks);
}

struct BizaGcRun {
  std::vector<uint64_t> content;
  uint64_t gc_runs = 0;
};

// Random overwrite churn at 2x exposed capacity through a tight array,
// driven synchronously against a truth map: every block's final content is
// known exactly, so a single migrated chunk the GC (or the batched gather
// path) corrupts is caught.
BizaGcRun RunGcHeavyBiza(bool batched) {
  Simulator sim;
  std::vector<std::unique_ptr<ZnsDevice>> devs;
  std::vector<ZnsDevice*> ptrs;
  for (int d = 0; d < 4; ++d) {
    ZnsConfig dc = ZnsConfig::Zn540(/*num_zones=*/24,
                                    /*zone_capacity_blocks=*/256);
    dc.seed = static_cast<uint64_t>(d) + 1;
    devs.push_back(std::make_unique<ZnsDevice>(&sim, dc));
    ptrs.push_back(devs.back().get());
  }
  BizaConfig config;
  config.batched_gc_io = batched;
  config.exposed_capacity_ratio = 0.45;
  // Stock watermarks (stop at 28% free zones) sit above the reachable
  // equilibrium once churn decays stripes (each 1-2-chunk stripe still pins
  // a parity block), which would leave GC running forever; aim lower so
  // collection triggers, reclaims, and quiesces.
  config.gc_trigger_free_ratio = 0.10;
  config.gc_stop_free_ratio = 0.14;
  BizaArray array(&sim, ptrs, config);

  const uint64_t cap = array.capacity_blocks();
  constexpr uint64_t kReq = 8;
  std::vector<uint64_t> truth(cap, 0);
  Rng rng(13);
  const uint64_t requests = 2 * cap / kReq;
  for (uint64_t r = 0; r < requests; ++r) {
    const uint64_t lbn = rng.Uniform(cap / kReq) * kReq;
    std::vector<uint64_t> patterns(kReq);
    for (uint64_t i = 0; i < kReq; ++i) {
      patterns[i] = (r << 20) | (lbn + i) | 1;
      truth[lbn + i] = patterns[i];
    }
    Status out = InternalError("never completed");
    array.SubmitWrite(lbn, std::move(patterns),
                      [&out](const Status& s) { out = s; }, WriteTag::kData);
    sim.RunUntilIdle();
    EXPECT_TRUE(out.ok()) << "req " << r << ": " << out.ToString();
  }

  BizaGcRun result;
  result.gc_runs = array.stats().gc_runs;
  result.content.assign(cap, 0);
  for (uint64_t lbn = 0; lbn < cap; lbn += kReq) {
    const uint64_t n = std::min(kReq, cap - lbn);
    Status status = InternalError("never completed");
    std::vector<uint64_t> out;
    array.SubmitRead(lbn, n, [&](const Status& s, std::vector<uint64_t> p) {
      status = s;
      out = std::move(p);
    });
    sim.RunUntilIdle();
    EXPECT_TRUE(status.ok()) << "lbn " << lbn;
    for (uint64_t i = 0; i < out.size(); ++i) {
      result.content[lbn + i] = out[i];
    }
  }
  EXPECT_EQ(result.content, truth) << "GC corrupted migrated content";
  return result;
}

TEST(BatchedGcEquivalence, BizaGcPreservesContentUnderBatching) {
  const BizaGcRun batched = RunGcHeavyBiza(/*batched=*/true);
  const BizaGcRun legacy = RunGcHeavyBiza(/*batched=*/false);
  ASSERT_GT(batched.gc_runs, 0u)
      << "workload did not trigger GC; equivalence check is vacuous";
  ASSERT_GT(legacy.gc_runs, 0u);
  // Same workload, same devices: batched and legacy GC land identical data.
  EXPECT_EQ(batched.content, legacy.content);
}

}  // namespace
}  // namespace biza
