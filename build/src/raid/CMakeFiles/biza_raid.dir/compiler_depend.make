# Empty compiler generated dependencies file for biza_raid.
# This may be replaced when dependencies are built.
