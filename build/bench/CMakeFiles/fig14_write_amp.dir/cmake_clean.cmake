file(REMOVE_RECURSE
  "CMakeFiles/fig14_write_amp.dir/fig14_write_amp.cc.o"
  "CMakeFiles/fig14_write_amp.dir/fig14_write_amp.cc.o.d"
  "fig14_write_amp"
  "fig14_write_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_write_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
