file(REMOVE_RECURSE
  "CMakeFiles/channel_detector_test.dir/channel_detector_test.cc.o"
  "CMakeFiles/channel_detector_test.dir/channel_detector_test.cc.o.d"
  "channel_detector_test"
  "channel_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
