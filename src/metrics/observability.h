// The per-experiment observability bundle: one StatRegistry + one Tracer +
// one TimeSeriesSampler, owned together and attached to a platform through
// PlatformConfig::obs (mirroring the FaultInjector attach pattern).
//
// Ownership: the caller (afa_bench, a test) owns the Observability and the
// Simulator with the same lifetime; devices and engines hold raw pointers.
// A null Observability* everywhere means "disabled" and costs one branch
// per instrumentation site.
#ifndef BIZA_SRC_METRICS_OBSERVABILITY_H_
#define BIZA_SRC_METRICS_OBSERVABILITY_H_

#include "src/metrics/sampler.h"
#include "src/metrics/stat_registry.h"
#include "src/metrics/tracer.h"

namespace biza {

struct Observability {
  StatRegistry registry;
  Tracer tracer;
  TimeSeriesSampler sampler{&registry};
};

}  // namespace biza

#endif  // BIZA_SRC_METRICS_OBSERVABILITY_H_
