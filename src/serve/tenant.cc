#include "src/serve/tenant.h"

#include <algorithm>
#include <cstdlib>

namespace biza {

const char* TenantClassName(TenantClass cls) {
  switch (cls) {
    case TenantClass::kLatency:
      return "latency";
    case TenantClass::kThroughput:
      return "throughput";
    case TenantClass::kBatch:
      return "batch";
  }
  return "?";
}

TenantSpec TenantSpec::ForClass(TenantClass cls, std::string name, double iops,
                                uint32_t weight) {
  TenantSpec spec;
  spec.name = std::move(name);
  spec.cls = cls;
  spec.arrival.base_iops = iops;
  switch (cls) {
    case TenantClass::kLatency:
      // Point reads at a steady rate; pays for tail latency.
      spec.read_fraction = 0.9;
      spec.request_blocks = 1;  // 4 KiB
      spec.slo.hedge_quantile = 0.95;
      spec.slo.hedge_multiplier = 2.0;
      spec.slo.weight = 4;
      spec.slo.inflight_cap = 0;
      spec.slo.gray_shed_factor = 1.0;
      break;
    case TenantClass::kThroughput:
      // Mixed medium I/O with a diurnal swing.
      spec.read_fraction = 0.5;
      spec.request_blocks = 16;  // 64 KiB
      spec.arrival.ramp_amplitude = 0.5;
      spec.arrival.ramp_period_s = 2.0;
      spec.slo.hedge_quantile = 0.99;
      spec.slo.hedge_multiplier = 3.0;
      spec.slo.weight = 2;
      spec.slo.inflight_cap = 16;
      spec.slo.gray_shed_factor = 0.5;
      break;
    case TenantClass::kBatch:
      // Large bursty writes; no hedging, first to shed.
      spec.read_fraction = 0.1;
      spec.request_blocks = 64;  // 256 KiB
      spec.arrival.burst_mult = 8.0;
      spec.arrival.burst_period_s = 1.0;
      spec.arrival.burst_on_s = 0.25;
      spec.slo.hedge_quantile = 0.0;
      spec.slo.weight = 1;
      spec.slo.inflight_cap = 8;
      spec.slo.gray_shed_factor = 0.25;
      break;
  }
  if (weight > 0) {
    spec.slo.weight = weight;
  }
  return spec;
}

namespace {

bool ParseClass(const std::string& token, TenantClass* out) {
  static const struct {
    const char* name;
    TenantClass cls;
  } kClasses[] = {
      {"latency", TenantClass::kLatency},
      {"throughput", TenantClass::kThroughput},
      {"batch", TenantClass::kBatch},
  };
  if (token.empty()) {
    return false;
  }
  for (const auto& entry : kClasses) {
    if (std::string(entry.name).compare(0, token.size(), token) == 0) {
      *out = entry.cls;
      return true;
    }
  }
  return false;
}

double DefaultIops(TenantClass cls) {
  switch (cls) {
    case TenantClass::kLatency:
      return 4000.0;
    case TenantClass::kThroughput:
      return 2000.0;
    case TenantClass::kBatch:
      return 1000.0;
  }
  return 1000.0;
}

}  // namespace

bool ParseTenantList(const std::string& text, std::vector<TenantSpec>* out) {
  out->clear();
  size_t pos = 0;
  int index = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      return false;
    }
    // class[:weight[:iops]]
    std::string fields[3];
    int nfields = 0;
    size_t fpos = 0;
    while (fpos <= item.size() && nfields < 3) {
      size_t colon = item.find(':', fpos);
      if (colon == std::string::npos) {
        colon = item.size();
      }
      fields[nfields++] = item.substr(fpos, colon - fpos);
      fpos = colon + 1;
    }
    TenantClass cls;
    if (!ParseClass(fields[0], &cls)) {
      return false;
    }
    uint32_t weight = 0;
    if (nfields >= 2) {
      char* end = nullptr;
      const long value = std::strtol(fields[1].c_str(), &end, 10);
      if (end == fields[1].c_str() || *end != '\0' || value <= 0) {
        return false;
      }
      weight = static_cast<uint32_t>(value);
    }
    double iops = DefaultIops(cls);
    if (nfields >= 3) {
      char* end = nullptr;
      const double value = std::strtod(fields[2].c_str(), &end);
      if (end == fields[2].c_str() || *end != '\0' || value <= 0.0) {
        return false;
      }
      iops = value;
    }
    out->push_back(TenantSpec::ForClass(
        cls, std::string(TenantClassName(cls)) + std::to_string(index), iops,
        weight));
    index++;
    if (comma == text.size()) {
      break;
    }
  }
  return !out->empty();
}

TenantSet::TenantSet(std::vector<TenantSpec> specs, uint64_t seed)
    : specs_(std::move(specs)), seed_(seed) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    specs_[i].arrival.seed = ArrivalSeed(i);
  }
}

std::vector<TenantSet::Region> TenantSet::AssignRegions(
    uint64_t footprint_blocks) const {
  std::vector<Region> regions(specs_.size());
  if (specs_.empty()) {
    return regions;
  }
  const uint64_t slice = footprint_blocks / specs_.size();
  for (size_t i = 0; i < specs_.size(); ++i) {
    const uint64_t request = std::max<uint64_t>(specs_[i].request_blocks, 1);
    regions[i].start = slice * i;
    // Align the region length down to the request size so every aligned
    // offset inside it fits entirely within the region.
    regions[i].blocks = std::max((slice / request) * request, request);
  }
  return regions;
}

uint64_t TenantSet::ArrivalSeed(size_t i) const {
  // SplitMix-style spread so tenant streams are decorrelated from each other
  // and from the workload streams.
  uint64_t x = seed_ * 0x9E3779B97F4A7C15ULL + (i + 1) * 2;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return x ^ (x >> 31);
}

uint64_t TenantSet::WorkloadSeed(size_t i) const {
  uint64_t x = seed_ * 0x9E3779B97F4A7C15ULL + (i + 1) * 2 + 1;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return x ^ (x >> 31);
}

}  // namespace biza
