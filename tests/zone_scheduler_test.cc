// Tests of the ZRWA-aware sliding-window scheduler (§4.4), including the
// central reorder-safety property: under arbitrary dispatch jitter, no
// scheduled write ever faults, while a naive parallel writer does.
#include <gtest/gtest.h>

#include <memory>

#include "src/biza/zone_scheduler.h"
#include "src/sim/simulator.h"
#include "src/zns/zns_device.h"

namespace biza {
namespace {

ZnsConfig DeviceConfig(SimTime jitter = 0, uint64_t seed = 1) {
  ZnsConfig config = ZnsConfig::Zn540(/*num_zones=*/8, /*zone_cap=*/2048);
  config.dispatch_jitter_ns = jitter;
  config.seed = seed;
  return config;
}

struct Fixture {
  Simulator sim;
  std::unique_ptr<ZnsDevice> dev;
  std::unique_ptr<ZoneScheduler> sched;

  explicit Fixture(const ZnsConfig& config) {
    dev = std::make_unique<ZnsDevice>(&sim, config);
    EXPECT_TRUE(dev->OpenZone(0, /*with_zrwa=*/true).ok());
    sched = std::make_unique<ZoneScheduler>(dev.get(), 0);
  }
};

TEST(ZoneScheduler, AllocateIsContiguous) {
  Fixture f(DeviceConfig());
  EXPECT_EQ(f.sched->Allocate(4), 0u);
  EXPECT_EQ(f.sched->Allocate(2), 4u);
  EXPECT_EQ(f.sched->free_blocks(), 2042u);
}

TEST(ZoneScheduler, WriteWithinWindowCompletes) {
  Fixture f(DeviceConfig());
  const uint64_t off = f.sched->Allocate(3);
  int completions = 0;
  f.sched->SubmitWrite(off, {1, 2, 3}, {}, [&](const Status& s) {
    EXPECT_TRUE(s.ok());
    completions++;
  });
  f.sim.RunUntilIdle();
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(f.sched->Idle());
}

TEST(ZoneScheduler, WritesBeyondWindowQueueUntilItSlides) {
  Fixture f(DeviceConfig());
  // Allocate well past the 256-block window and submit everything at once.
  int completions = 0;
  int failures = 0;
  for (int i = 0; i < 600; ++i) {
    const uint64_t off = f.sched->Allocate(1);
    f.sched->SubmitWrite(off, {static_cast<uint64_t>(i)}, {},
                         [&](const Status& s) {
                           completions++;
                           if (!s.ok()) {
                             failures++;
                           }
                         });
  }
  f.sim.RunUntilIdle();
  EXPECT_EQ(completions, 600);
  EXPECT_EQ(failures, 0);
  EXPECT_GT(f.sched->win_start(), 0u);  // the window slid
}

TEST(ZoneScheduler, InPlaceUpdateWithinWindow) {
  Fixture f(DeviceConfig());
  const uint64_t off = f.sched->Allocate(1);
  f.sched->SubmitWrite(off, {10}, {}, [](const Status&) {});
  f.sim.RunUntilIdle();
  ASSERT_TRUE(f.sched->CanUpdateInPlace(off));
  int ok = 0;
  f.sched->SubmitWrite(off, {20}, {}, [&](const Status& s) {
    EXPECT_TRUE(s.ok());
    ok++;
  });
  f.sim.RunUntilIdle();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(f.sched->PatternAt(off), 20u);
  EXPECT_EQ(f.dev->stats().zrwa_absorbed_blocks, 1u);
}

TEST(ZoneScheduler, CannotUpdateBehindWindow) {
  Fixture f(DeviceConfig());
  // Fill far past the window so block 0 is flushed.
  for (int i = 0; i < 600; ++i) {
    const uint64_t off = f.sched->Allocate(1);
    f.sched->SubmitWrite(off, {1}, {}, [](const Status&) {});
  }
  f.sim.RunUntilIdle();
  EXPECT_FALSE(f.sched->CanUpdateInPlace(0));
}

TEST(ZoneScheduler, PatternTrackingSurvivesWindowSlide) {
  Fixture f(DeviceConfig());
  for (uint64_t i = 0; i < 500; ++i) {
    const uint64_t off = f.sched->Allocate(1);
    f.sched->SubmitWrite(off, {i * 7}, {}, [](const Status&) {});
  }
  f.sim.RunUntilIdle();
  for (uint64_t i = 0; i < 500; i += 37) {
    EXPECT_EQ(f.sched->PatternAt(i), i * 7);
  }
}

TEST(ZoneScheduler, SealRequiresFullAllocationAndIdle) {
  Fixture f(DeviceConfig());
  f.sched->Allocate(10);
  EXPECT_EQ(f.sched->Seal().code(), ErrorCode::kFailedPrecondition);
}

TEST(ZoneScheduler, SealFlushesAndFullsZone) {
  Fixture f(DeviceConfig());
  const uint64_t cap = f.sched->capacity();
  for (uint64_t off = 0; off < cap; off += 64) {
    const uint64_t o = f.sched->Allocate(64);
    f.sched->SubmitWrite(o, std::vector<uint64_t>(64, off), {},
                         [](const Status&) {});
  }
  f.sim.RunUntilIdle();
  ASSERT_TRUE(f.sched->Idle());
  ASSERT_TRUE(f.sched->Seal().ok());
  EXPECT_EQ(f.dev->Report(0).state, ZoneState::kFull);
  EXPECT_EQ(f.dev->stats().flash_programmed_blocks, cap);
}

TEST(ZoneScheduler, IdleAccountsUnsubmittedAllocations) {
  Fixture f(DeviceConfig());
  EXPECT_TRUE(f.sched->Idle());
  const uint64_t off = f.sched->Allocate(1);
  EXPECT_FALSE(f.sched->Idle());  // allocated, not yet submitted
  f.sched->SubmitWrite(off, {1}, {}, [](const Status&) {});
  f.sim.RunUntilIdle();
  EXPECT_TRUE(f.sched->Idle());
}

// ---- The §3.2/§4.4 property: reorder safety under arbitrary jitter -------

class ReorderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReorderPropertyTest, NoWriteFailuresUnderJitter) {
  const uint64_t seed = GetParam();
  ZnsConfig config = DeviceConfig(/*jitter=*/30 * kMicrosecond, seed);
  Fixture f(config);
  Rng rng(seed * 77 + 1);

  int failures = 0;
  int completions = 0;
  int expected = 0;
  // Mixed workload: appends racing ahead of the window plus in-place
  // updates to recently written blocks, all in flight simultaneously.
  for (int burst = 0; burst < 40; ++burst) {
    const int appends = static_cast<int>(1 + rng.Uniform(32));
    for (int i = 0; i < appends && f.sched->free_blocks() > 0; ++i) {
      const uint64_t off = f.sched->Allocate(1);
      expected++;
      f.sched->SubmitWrite(off, {rng.Next()}, {}, [&](const Status& s) {
        completions++;
        if (!s.ok()) {
          failures++;
        }
      });
    }
    // A few in-place updates to random updatable offsets.
    for (int i = 0; i < 8; ++i) {
      if (f.sched->alloc_ptr() == 0) {
        break;
      }
      const uint64_t off =
          f.sched->win_start() +
          rng.Uniform(f.sched->alloc_ptr() - f.sched->win_start());
      if (!f.sched->CanUpdateInPlace(off)) {
        continue;
      }
      expected++;
      f.sched->SubmitWrite(off, {rng.Next()}, {}, [&](const Status& s) {
        completions++;
        if (!s.ok()) {
          failures++;
        }
      });
    }
    // Let the simulation interleave a little before the next burst.
    f.sim.RunFor(rng.Uniform(200 * kMicrosecond));
  }
  f.sim.RunUntilIdle();
  EXPECT_EQ(completions, expected);
  EXPECT_EQ(failures, 0) << "seed " << seed;
  EXPECT_EQ(f.dev->stats().write_failures, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// Same-block update ordering: content must equal the LAST submitted value
// even when several updates to one block are in flight.
TEST(ZoneScheduler, ConcurrentSameBlockUpdatesApplyInOrder) {
  ZnsConfig config = DeviceConfig(/*jitter=*/30 * kMicrosecond, /*seed=*/5);
  Fixture f(config);
  const uint64_t off = f.sched->Allocate(1);
  for (uint64_t v = 0; v <= 50; ++v) {
    f.sched->SubmitWrite(off, {v}, {}, [](const Status& s) {
      EXPECT_TRUE(s.ok());
    });
  }
  f.sim.RunUntilIdle();
  auto pattern = f.dev->ReadPatternSync(0, off);
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(*pattern, 50u);
}

}  // namespace
}  // namespace biza

namespace biza {
namespace {

TEST(ZoneSchedulerSplit, JobsWiderThanWindowComplete) {
  ZnsConfig config = ZnsConfig::Zn540(/*num_zones=*/8, /*zone_cap=*/2048);
  config.zrwa_blocks = 64;  // narrow window
  config.dispatch_jitter_ns = 0;
  Simulator sim;
  ZnsDevice dev(&sim, config);
  ASSERT_TRUE(dev.OpenZone(0, true).ok());
  ZoneScheduler sched(&dev, 0);
  // A single 500-block write (7.8x the window) must split and complete.
  const uint64_t off = sched.Allocate(500);
  std::vector<uint64_t> patterns(500);
  for (uint64_t i = 0; i < 500; ++i) {
    patterns[i] = i * 3 + 1;
  }
  int completions = 0;
  sched.SubmitWrite(off, std::move(patterns), {}, [&](const Status& s) {
    EXPECT_TRUE(s.ok());
    completions++;
  });
  sim.RunUntilIdle();
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(sched.Idle());
  for (uint64_t i = 0; i < 500; i += 61) {
    auto pattern = dev.ReadPatternSync(0, off + i);
    ASSERT_TRUE(pattern.ok());
    EXPECT_EQ(*pattern, i * 3 + 1);
  }
  EXPECT_EQ(dev.stats().write_failures, 0u);
}

}  // namespace
}  // namespace biza
