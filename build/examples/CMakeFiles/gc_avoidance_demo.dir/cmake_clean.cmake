file(REMOVE_RECURSE
  "CMakeFiles/gc_avoidance_demo.dir/gc_avoidance_demo.cpp.o"
  "CMakeFiles/gc_avoidance_demo.dir/gc_avoidance_demo.cpp.o.d"
  "gc_avoidance_demo"
  "gc_avoidance_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_avoidance_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
