file(REMOVE_RECURSE
  "CMakeFiles/tab03_inter_zone.dir/tab03_inter_zone.cc.o"
  "CMakeFiles/tab03_inter_zone.dir/tab03_inter_zone.cc.o.d"
  "tab03_inter_zone"
  "tab03_inter_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_inter_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
