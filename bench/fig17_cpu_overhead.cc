// Figure 17: CPU overhead — per-component CPU usage and CPU efficiency
// (usage per GB/s) for 64 and 192 KiB sequential writes.
//
// Paper shapes: dm-zap's one-in-flight spinlock dominates (50.4% of
// dmzap+RAIZN's CPU, 84.7% of mdraid+dmzap's); BIZA spends ~31.5% more CPU
// than dmzap+RAIZN to parallelize I/O but wins on CPU efficiency because
// throughput rises ~88.5%.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"

namespace biza {
namespace {

struct CpuCase {
  double mbps = 0;
  double usage_pct = 0;
  std::map<std::string, double> component_pct;
};

CpuCase RunCase(PlatformKind kind, uint64_t req_blocks) {
  Simulator sim;
  PlatformConfig config = ThroughputConfig(23);
  auto platform = Platform::Create(&sim, kind, config);
  const SimTime start = sim.Now();
  const DriverReport report =
      RunBlockMicro(&sim, platform.get(), /*sequential=*/true, /*write=*/true,
                    req_blocks, /*iodepth=*/32, 200000, kSecond / 2);
  const SimTime elapsed = sim.Now() - start;

  const auto cpu = platform->CpuBreakdown();
  SimTime total_ns = 0;
  CpuCase result;
  for (const auto& [component, ns] : cpu) {
    total_ns += ns;
    result.component_pct[component] =
        static_cast<double>(ns) / static_cast<double>(elapsed) * 100.0;
  }
  result.mbps = report.WriteMBps();
  result.usage_pct =
      static_cast<double>(total_ns) / static_cast<double>(elapsed) * 100.0;
  RecordSimEvents(sim);
  return result;
}

void PrintCase(PlatformKind kind, uint64_t req_blocks, const CpuCase& c) {
  const double gbps = c.mbps / 1000.0;
  std::printf("%-16s %7lluK %9.0f %10.1f%% %12.1f", PlatformKindName(kind),
              static_cast<unsigned long long>(req_blocks * 4), c.mbps,
              c.usage_pct, gbps > 0 ? c.usage_pct / gbps : 0.0);
  for (const auto& [component, pct] : c.component_pct) {
    std::printf("  %s=%.0f%%", component.c_str(), pct);
  }
  std::printf("\n");
}

void Run() {
  PrintTitle("Figure 17", "CPU overhead and CPU efficiency");
  PrintPaperNote(
      "dmzap spinlock = 50.4% of dmzap+RAIZN CPU and 84.7% of mdraid+dmzap "
      "CPU; BIZA uses +31.5% CPU vs dmzap+RAIZN but has the best CPU "
      "efficiency (usage per GB/s) thanks to +88.5% throughput");

  const std::vector<uint64_t> sizes = {16, 48};
  const std::vector<PlatformKind> kinds = {
      PlatformKind::kBiza, PlatformKind::kDmzapRaizn,
      PlatformKind::kMdraidDmzap, PlatformKind::kMdraidConv};
  std::vector<std::function<CpuCase()>> jobs;
  for (uint64_t blocks : sizes) {
    for (PlatformKind kind : kinds) {
      jobs.push_back([kind, blocks]() { return RunCase(kind, blocks); });
    }
  }
  const std::vector<CpuCase> results = RunExperiments(std::move(jobs));

  std::printf("%-16s %8s %9s %11s %12s  per-component usage\n", "platform",
              "size", "MB/s", "CPU usage", "CPU/GBps");
  size_t job_index = 0;
  for (uint64_t blocks : sizes) {
    for (PlatformKind kind : kinds) {
      PrintCase(kind, blocks, results[job_index++]);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace biza

int main() {
  biza::BenchMetricScope metrics("fig17_cpu_overhead");
  biza::Run();
  return 0;
}
