// Size and time units used throughout the simulator.
//
// All simulated time is in nanoseconds (uint64), all sizes in bytes unless a
// name says otherwise ("blocks" = 4 KiB logical blocks by default).
#ifndef BIZA_SRC_COMMON_UNITS_H_
#define BIZA_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace biza {

using SimTime = uint64_t;  // nanoseconds of virtual time

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// The default logical block size of every device and engine in this repo.
// Matches the paper's 4 KB chunk size (§4.1).
inline constexpr uint64_t kBlockSize = 4 * kKiB;

// Converts a bandwidth in MB/s (decimal, as vendors quote) to a per-byte
// service time in nanoseconds (floating point to keep precision; callers
// multiply by a size and round).
constexpr double NsPerByte(double mb_per_s) {
  return 1e9 / (mb_per_s * 1e6);
}

// Service time in ns for `bytes` at `mb_per_s`.
constexpr SimTime TransferNs(uint64_t bytes, double mb_per_s) {
  return static_cast<SimTime>(static_cast<double>(bytes) * NsPerByte(mb_per_s));
}

// Throughput in MB/s (decimal) given bytes moved over a duration.
constexpr double ThroughputMBps(uint64_t bytes, SimTime duration_ns) {
  if (duration_ns == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / (static_cast<double>(duration_ns) / 1e9) / 1e6;
}

}  // namespace biza

#endif  // BIZA_SRC_COMMON_UNITS_H_
