// Simulated conventional block-interface SSD (models the WD SN640).
//
// A page-mapped FTL over the same NAND backend as the ZNS device:
// * L2P table (4 KiB pages), out-of-place updates, per-flash-block valid
//   counts.
// * Over-provisioned physical space; greedy garbage collection (victim =
//   fewest valid pages) triggered when free blocks run low. GC migrations
//   and erases occupy channel/die resources inline, so host I/O issued
//   during GC queues behind it — the uncontrollable latency spikes that
//   block-interface AFAs suffer (§2.1).
// * Internal write-amplification accounting (host vs flash writes).
//
// The device is intentionally "dumb": no stream separation and no hints, as
// with a real conventional SSD. The mdraid+ConvSSD baseline builds on it.
#ifndef BIZA_SRC_CONVSSD_CONV_SSD_H_
#define BIZA_SRC_CONVSSD_CONV_SSD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sparse_array.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/common/write_tag.h"
#include "src/fault/fault_injector.h"
#include "src/metrics/observability.h"
#include "src/nand/nand_backend.h"
#include "src/nvme/nvme_queue.h"
#include "src/sim/simulator.h"

namespace biza {

struct ConvSsdConfig {
  std::string model = "SIM-SN640";
  uint64_t capacity_blocks = 512 * 1024;  // 2 GiB user-visible
  double over_provision = 0.10;
  uint64_t pages_per_flash_block = 1024;  // 4 MiB erase unit
  double gc_trigger_free_ratio = 0.06;    // start GC below this free share
  double gc_stop_free_ratio = 0.10;       // collect until this free share
  NandTimingConfig timing = ConvTiming();
  // Legacy dispatch path: base + U[0, jitter) per command. The jitter
  // constant is DEPRECATED in favor of the queue-derived delay of the NVMe
  // frontend below; the legacy default stays bit-identical to seed.
  // dispatch_base_ns also remains the sharded-PDES lookahead floor.
  SimTime dispatch_base_ns = 2 * kMicrosecond;
  SimTime dispatch_jitter_ns = 8 * kMicrosecond;  // deprecated, see above
  // Modeled NVMe SQ/CQ pairs; when enabled the dispatch RNG is never
  // consumed and dispatch_jitter_ns is ignored.
  NvmeQueueConfig nvme;
  uint64_t seed = 1;

  // Model GC transfers as channel runs (one ReadRun + one ProgramRun per
  // migrated segment) instead of page-interleaved singles. Content, mapping
  // and WA accounting are identical either way; only the die-rotation order
  // of the migration arithmetic differs. Off = the legacy per-page model,
  // kept for equivalence tests.
  bool batched_gc_io = true;

  // Dense reference mode: preallocate the physical-page tables up front (the
  // pre-sparse layout) instead of growing them with written data.
  bool dense_state = false;

  static NandTimingConfig ConvTiming() {
    NandTimingConfig t;
    // SN640: 2250 MB/s write, 3331 MB/s read (Table 5), same flash basis.
    t.ctrl_write_mbps = 2250.0;
    t.ctrl_read_mbps = 3331.0;
    return t;
  }
};

struct ConvSsdStats {
  uint64_t host_written_blocks = 0;
  uint64_t flash_programmed_blocks = 0;  // host + GC migrations
  uint64_t flash_by_tag[kNumWriteTags] = {};
  uint64_t gc_migrated_blocks = 0;
  uint64_t host_read_blocks = 0;
  uint64_t erases = 0;
  uint64_t gc_runs = 0;

  double WriteAmplification() const {
    if (host_written_blocks == 0) {
      return 0.0;
    }
    return static_cast<double>(flash_programmed_blocks) /
           static_cast<double>(host_written_blocks);
  }
};

class ConvSsd {
 public:
  using WriteCallback = std::function<void(const Status&)>;
  using ReadCallback =
      std::function<void(const Status&, std::vector<uint64_t> patterns)>;

  ConvSsd(Simulator* sim, const ConvSsdConfig& config);

  // Writes patterns.size() blocks starting at `lbn` (async). `tag`
  // classifies the write for WA-breakdown accounting.
  void SubmitWrite(uint64_t lbn, std::vector<uint64_t> patterns,
                   WriteCallback cb, WriteTag tag = WriteTag::kData);
  void SubmitRead(uint64_t lbn, uint64_t nblocks, ReadCallback cb);

  Result<uint64_t> ReadPatternSync(uint64_t lbn) const;

  const ConvSsdConfig& config() const { return config_; }
  const ConvSsdStats& stats() const { return stats_; }
  NandBackend& backend() { return *backend_; }
  const NvmeQueuePair& nvme_queue() const { return nvmeq_; }

  // Bytes of FTL state currently resident (L2P + physical-page tables +
  // flash-block descriptors). Scales with written data, not raw capacity.
  uint64_t ResidentStateBytes() const;

  // Interposes `injector` on every command this device serves; `device_id`
  // names this device in the injector's fault plan. Pass nullptr to detach.
  void AttachFaultInjector(FaultInjector* injector, int device_id) {
    fault_ = injector;
    fault_device_id_ = device_id;
  }

  // Registers this device's counters ("dev<id>.conv.*") with the registry
  // and forwards the tracer to the NAND backend for channel/die spans.
  // Pass nullptr to detach.
  void AttachObservability(Observability* obs, int device_id);

 private:
  static constexpr uint64_t kUnmapped = ~0ULL;

  struct FlashBlock {
    int channel = 0;
    uint64_t next_page = 0;       // allocation cursor within the block
    uint64_t valid_pages = 0;
    bool free = true;
  };

  void DoWrite(uint64_t lbn, std::vector<uint64_t> patterns, WriteCallback cb,
               WriteTag tag);
  void DoRead(uint64_t lbn, uint64_t nblocks, ReadCallback cb);

  // Allocates one physical page on `channel`'s active block (FTLs stripe
  // user writes across channels), running GC first if space is low.
  uint64_t AllocatePage(int channel);
  uint64_t GrabFreeBlock(int channel_pref);
  void MaybeRunGc();
  // Returns false when no victim exists.
  bool CollectOne();
  uint64_t FreeBlocks() const { return free_blocks_; }

  SimTime DispatchDelay();

  // Submission/completion paths: through the modeled NVMe queue pairs when
  // enabled, otherwise the legacy jittered dispatch and direct completions.
  template <typename F>
  void AtArrival(F&& fn) {
    if (nvmeq_.enabled()) {
      nvmeq_.Submit(InlineCallback(std::forward<F>(fn)));
      return;
    }
    sim_->ScheduleAt(sim_->HostNow() + DispatchDelay(), std::forward<F>(fn));
  }
  template <typename F>
  void CompleteIo(SimTime when, F&& fn) {
    if (nvmeq_.enabled()) {
      nvmeq_.Complete(when, InlineCallback(std::forward<F>(fn)));
      return;
    }
    sim_->CompleteAt(when, std::forward<F>(fn));
  }
  template <typename F>
  void CompleteIoNow(F&& fn) {
    if (nvmeq_.enabled()) {
      nvmeq_.Complete(sim_->Now(), InlineCallback(std::forward<F>(fn)));
      return;
    }
    sim_->CompleteNow(std::forward<F>(fn));
  }

  // Explicit-now variants: the injector must see this device's clock, not
  // the host's, when the device drains on a shard thread (identical when
  // unsharded).
  Status FaultCheck(IoKind kind) {
    return fault_ != nullptr
               ? fault_->OnIo(fault_device_id_, kind, sim_->Now())
               : OkStatus();
  }
  SimTime Stretch(SimTime done) const {
    return fault_ != nullptr
               ? fault_->StretchCompletion(fault_device_id_, -1, done,
                                           sim_->Now())
               : done;
  }

  Simulator* sim_;
  ConvSsdConfig config_;
  std::unique_ptr<NandBackend> backend_;
  NvmeQueuePair nvmeq_;
  Rng rng_;
  FaultInjector* fault_ = nullptr;
  int fault_device_id_ = -1;

  // l2p_ is hash-keyed because host writes are uniform-random over a vast
  // LBA space (chunking would allocate a chunk per write); the physical
  // tables fill densely within each flash block, so chunks suit them.
  uint64_t L2p(uint64_t lbn) const {
    const uint64_t* ppn = l2p_.Find(lbn);
    return ppn == nullptr ? kUnmapped : *ppn;
  }

  uint64_t total_pages_ = 0;
  uint64_t num_flash_blocks_ = 0;
  SparseTable<uint64_t> l2p_;          // lbn -> ppn (absent = unmapped)
  ChunkedArray<uint64_t> p2l_;         // ppn -> lbn (kUnmapped if invalid)
  ChunkedArray<uint64_t> page_pattern_;
  std::vector<FlashBlock> flash_blocks_;
  std::vector<uint64_t> active_blocks_;   // one open block per channel
  size_t write_rr_ = 0;                   // channel rotation for user writes
  uint64_t gc_active_block_ = kUnmapped;  // separate cursor for GC writes
  uint64_t free_blocks_ = 0;
  ConvSsdStats stats_;
};

}  // namespace biza

#endif  // BIZA_SRC_CONVSSD_CONV_SSD_H_
