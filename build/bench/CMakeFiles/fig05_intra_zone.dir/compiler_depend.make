# Empty compiler generated dependencies file for fig05_intra_zone.
# This may be replaced when dependencies are built.
