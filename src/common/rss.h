// Process-memory introspection for the bench/CI harness.
//
// Peak RSS is the acceptance metric for full-geometry runs (a 4 x ZN540
// array must simulate in a few GiB, not tens): benches print it on their
// BENCH_METRIC lines and CI asserts a ceiling on the full-geometry smoke.
#ifndef BIZA_SRC_COMMON_RSS_H_
#define BIZA_SRC_COMMON_RSS_H_

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace biza {

// Peak resident-set size of this process in bytes (Linux VmHWM), or 0 where
// /proc is unavailable.
inline uint64_t PeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  uint64_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

}  // namespace biza

#endif  // BIZA_SRC_COMMON_RSS_H_
