file(REMOVE_RECURSE
  "CMakeFiles/biza_sim.dir/simulator.cc.o"
  "CMakeFiles/biza_sim.dir/simulator.cc.o.d"
  "libbiza_sim.a"
  "libbiza_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biza_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
