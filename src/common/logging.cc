#include "src/common/logging.h"

namespace biza {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

}  // namespace biza
