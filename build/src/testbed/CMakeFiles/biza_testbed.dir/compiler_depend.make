# Empty compiler generated dependencies file for biza_testbed.
# This may be replaced when dependencies are built.
