#include "src/biza/channel_detector.h"

#include <cassert>

namespace biza {

ChannelDetector::ChannelDetector(const ChannelDetectorConfig& config,
                                 uint32_t num_zones)
    : config_(config),
      guess_(num_zones, -1),
      confirmed_(num_zones, false) {}

int ChannelDetector::OnZoneOpened(uint32_t zone) {
  assert(zone < guess_.size());
  const int guess = static_cast<int>(
      open_seq_ % static_cast<uint64_t>(config_.num_channels));
  open_seq_++;
  guess_[zone] = guess;
  confirmed_[zone] = false;
  votes_.erase(zone);
  return guess;
}

void ChannelDetector::OnZoneReset(uint32_t zone) {
  assert(zone < guess_.size());
  guess_[zone] = -1;
  confirmed_[zone] = false;
  votes_.erase(zone);
}

void ChannelDetector::Confirm(uint32_t zone, int channel) {
  assert(zone < guess_.size());
  guess_[zone] = channel;
  confirmed_[zone] = true;
  votes_.erase(zone);
}

void ChannelDetector::RecordWriteLatency(uint32_t zone, SimTime latency_ns,
                                         int busy_channel,
                                         bool busy_confirmed) {
  const double lat = static_cast<double>(latency_ns);
  const double prev_ewma = lat_ewma_;
  if (!has_ewma_) {
    lat_ewma_ = lat;
    has_ewma_ = true;
    return;
  }
  lat_ewma_ = config_.latency_ewma_alpha * lat +
              (1.0 - config_.latency_ewma_alpha) * lat_ewma_;

  if (busy_channel < 0 || zone >= guess_.size() || confirmed_[zone]) {
    return;
  }
  if (lat <= config_.spike_factor * prev_ewma) {
    return;
  }
  stats_.spikes_observed++;
  if (guess_[zone] == busy_channel) {
    return;  // the guess already explains the spike
  }
  // Vote: this zone is maybe on the BUSY channel (B in Fig. 8).
  auto& zone_votes = votes_[zone];
  const int weight = busy_confirmed ? config_.vote_threshold : 1;
  zone_votes[busy_channel] += weight;
  stats_.votes_cast++;
  if (busy_confirmed) {
    stats_.confirmed_shortcuts++;
  }
  if (zone_votes[busy_channel] >= config_.vote_threshold) {
    // Rectify to the channel with the most votes (C in Fig. 8).
    int best_channel = busy_channel;
    int best_votes = 0;
    for (const auto& [channel, count] : zone_votes) {
      if (count > best_votes) {
        best_votes = count;
        best_channel = channel;
      }
    }
    guess_[zone] = best_channel;
    votes_.erase(zone);
    stats_.corrections++;
  }
}

int ChannelDetector::ChannelOf(uint32_t zone) const {
  return zone < guess_.size() ? guess_[zone] : -1;
}

bool ChannelDetector::IsConfirmed(uint32_t zone) const {
  return zone < confirmed_.size() && confirmed_[zone];
}

}  // namespace biza
