// Tenant isolation under aggressor bursts: the serving-frontend figure.
//
// A latency-class victim (4 KiB point reads, steady arrivals) shares the
// array with a batch-class aggressor (128 KiB scan reads in short violent
// spikes — an analytics job waking up twice a second). Three runs per
// platform:
//
//   solo  — the victim alone: its achievable tail with nobody else on the
//           array (the SLO baseline).
//   fifo  — shared array, FIFO admission: the strawman. During a spike the
//           aggressor parks a convoy of large scans ahead of the victim's
//           reads and the victim's p99.9 blows up with queue delay.
//   drr   — shared array, deficit-round-robin admission with per-tenant
//           in-flight caps: the aggressor is slowed to its fair share and
//           the victim's p99.9 stays within a small factor of solo.
//
// All latencies are measured from the *intended* arrival (coordinated-
// omission-free), so admission queueing is visible in the tail. One
// TENANT_ISOLATION line per platform is machine-readable for the CI smoke,
// which asserts DRR beats FIFO on victim p99.9.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/serve_frontend.h"

using namespace biza;

namespace {

constexpr uint64_t kGlobalIodepth = 8;
constexpr double kVictimIops = 2000.0;
constexpr double kAggressorIops = 400.0;  // base rate; x160 during spikes

enum class Mode { kSolo, kFifo, kDrr };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kSolo:
      return "solo";
    case Mode::kFifo:
      return "fifo";
    case Mode::kDrr:
      return "drr";
  }
  return "?";
}

struct CaseResult {
  double victim_p50_us = 0.0;
  double victim_p999_us = 0.0;
  double victim_queue_p999_us = 0.0;
  uint64_t aggressor_capped = 0;
  double aggressor_mbps = 0.0;
};

CaseResult RunCase(PlatformKind kind, Mode mode, uint64_t seed) {
  Simulator sim;
  PlatformConfig config = BenchConfig(seed + 1);
  auto platform = Platform::Create(&sim, kind, config);
  BlockTarget* target = platform->block();

  ServeConfig serve;
  serve.tenants.push_back(
      TenantSpec::ForClass(TenantClass::kLatency, "victim", kVictimIops));
  if (mode != Mode::kSolo) {
    serve.tenants.push_back(TenantSpec::ForClass(TenantClass::kBatch,
                                                 "aggressor", kAggressorIops));
    // The aggressor is a scan job: 128 KiB reads, with short violent spikes
    // (25 ms at 160x every 500 ms — 5% duty). Reads keep the interference
    // purely at the queueing level: a *write* aggressor's damage is NAND
    // programs and GC, which no admission policy can undo once the bytes are
    // accepted (afa_bench --tenants explores that regime). The spike rate
    // far exceeds array read bandwidth, so the admission window floods and
    // FIFO parks the victim behind the scan convoy; DRR's weights pop the
    // victim first, and the cap of one in-flight scan bounds the device-
    // level wait the victim can experience to a single 128 KiB transfer.
    serve.tenants.back().slo.inflight_cap = 1;
    serve.tenants.back().read_fraction = 1.0;
    serve.tenants.back().request_blocks = 32;
    ArrivalSpec& aggr = serve.tenants.back().arrival;
    aggr.burst_mult = 160.0;
    aggr.burst_period_s = 0.5;
    aggr.burst_on_s = 0.025;
  }
  // Modest footprint keeps GC cheap (mostly-dead zones, ample spares): the
  // figure isolates *admission* interference, not write-amp interference,
  // which afa_bench --tenants explores separately.
  serve.footprint_blocks = target->capacity_blocks() / 8;
  serve.policy =
      mode == Mode::kFifo ? AdmissionPolicy::kFifo : AdmissionPolicy::kDrr;
  serve.iodepth = kGlobalIodepth;
  serve.seed = seed + 1;
  serve.duration_ns = kSecond;

  ServeFrontend frontend(&sim, target, serve);
  Driver::Fill(&sim, target, frontend.config().footprint_blocks, 64);
  const std::vector<TenantReport> reports = frontend.Run();
  platform->Quiesce(&sim);

  CaseResult result;
  const DriverReport& victim = reports[0].report;
  result.victim_p50_us = victim.read_latency.Percentile(50.0) / 1e3;
  result.victim_p999_us = victim.read_latency.Percentile(99.9) / 1e3;
  result.victim_queue_p999_us = victim.queue_delay.Percentile(99.9) / 1e3;
  if (reports.size() > 1) {
    result.aggressor_capped = reports[1].cap_deferrals;
    result.aggressor_mbps = reports[1].report.TotalMBps();
  }
  RecordSimEvents(sim, victim);
  return result;
}

void RunPlatform(PlatformKind kind) {
  std::printf("platform %s\n", PlatformKindName(kind));
  std::printf("  %-5s %14s %14s %16s %14s %12s\n", "mode", "victim p50",
              "victim p99.9", "queue p99.9", "aggr capped", "aggr MB/s");

  double solo_p999 = 0.0;
  double p999[3] = {0.0, 0.0, 0.0};
  for (Mode mode : {Mode::kSolo, Mode::kFifo, Mode::kDrr}) {
    const std::vector<CaseResult> results = RunSeeded(
        [kind, mode](uint64_t seed) { return RunCase(kind, mode, seed); });
    std::vector<double> p50s, p999s, queues, mbps;
    uint64_t capped = 0;
    for (const CaseResult& r : results) {
      p50s.push_back(r.victim_p50_us);
      p999s.push_back(r.victim_p999_us);
      queues.push_back(r.victim_queue_p999_us);
      mbps.push_back(r.aggressor_mbps);
      capped += r.aggressor_capped;
    }
    const SeedStat p50 = MeanStddev(p50s);
    const SeedStat p999_stat = MeanStddev(p999s);
    const SeedStat queue = MeanStddev(queues);
    const SeedStat aggr = MeanStddev(mbps);
    std::printf("  %-5s %8.1f±%-4.1fus %8.1f±%-4.1fus %10.1f±%-4.1fus "
                "%14llu %10.1f\n",
                ModeName(mode), p50.mean, p50.stddev, p999_stat.mean,
                p999_stat.stddev, queue.mean, queue.stddev,
                static_cast<unsigned long long>(capped /
                                                results.size()),
                aggr.mean);
    p999[static_cast<int>(mode)] = p999_stat.mean;
    if (mode == Mode::kSolo) {
      solo_p999 = p999_stat.mean;
    }
  }

  const double fifo_ratio = solo_p999 > 0 ? p999[1] / solo_p999 : 0.0;
  const double drr_ratio = solo_p999 > 0 ? p999[2] / solo_p999 : 0.0;
  std::printf("  victim p99.9 vs solo: fifo %.2fx  drr %.2fx\n", fifo_ratio,
              drr_ratio);
  std::printf("TENANT_ISOLATION {\"platform\":\"%s\",\"solo_p999_us\":%.1f,"
              "\"fifo_p999_us\":%.1f,\"drr_p999_us\":%.1f,"
              "\"fifo_ratio\":%.3f,\"drr_ratio\":%.3f}\n",
              PlatformKindName(kind), solo_p999, p999[1], p999[2], fifo_ratio,
              drr_ratio);
}

}  // namespace

int main() {
  BenchMetricScope metric("tenant_isolation");
  PrintTitle("tenant_isolation",
             "victim tail latency under aggressor bursts (serving frontend)");
  PrintPaperNote(
      "not a paper figure — serving-tier companion experiment: DRR admission "
      "keeps a latency tenant's p99.9 within a small factor of its solo "
      "baseline while FIFO lets aggressor bursts blow it up");
  std::printf("victim: latency class, %.0f IOPS 4 KiB reads; aggressor: "
              "batch class, %.0f IOPS base 128 KiB scan reads, 160x spikes "
              "(25 ms of every 500 ms); global iodepth %llu, %d seeds\n\n",
              kVictimIops, kAggressorIops,
              static_cast<unsigned long long>(kGlobalIodepth), BenchSeeds());
  RunPlatform(PlatformKind::kBiza);
  RunPlatform(PlatformKind::kMdraidConv);
  return 0;
}
