#include "src/serve/admission.h"

#include <algorithm>
#include <cmath>

namespace biza {

namespace {
// DRR credit added per round per unit of weight, in blocks. One weight unit
// buys a 32 KiB slice per round; a weight-4 latency tenant gets 128 KiB.
constexpr uint64_t kQuantumBlocks = 8;
}  // namespace

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kDrr:
      return "drr";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(AdmissionPolicy policy,
                               std::vector<TenantLimits> limits,
                               uint64_t global_inflight_cap)
    : policy_(policy), global_inflight_cap_(global_inflight_cap) {
  tenants_.resize(limits.size());
  for (size_t i = 0; i < limits.size(); ++i) {
    tenants_[i].limits = limits[i];
  }
}

uint64_t AdmissionQueue::EffectiveCap(const TenantState& tenant) const {
  uint64_t cap = tenant.limits.inflight_cap;
  if (under_pressure_ && tenant.limits.gray_shed_factor < 1.0) {
    // Shed: scale the cap (or the global cap for uncapped tenants) down.
    const uint64_t base = cap > 0 ? cap : global_inflight_cap_;
    cap = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(static_cast<double>(base) *
                         tenant.limits.gray_shed_factor)));
  }
  return cap;
}

bool AdmissionQueue::AtCap(const TenantState& tenant) const {
  const uint64_t cap = EffectiveCap(tenant);
  return cap > 0 && tenant.inflight >= cap;
}

void AdmissionQueue::Push(ServeRequest request) {
  const int tenant = request.tenant;
  tenants_[static_cast<size_t>(tenant)].queue.push_back(std::move(request));
  if (policy_ == AdmissionPolicy::kFifo) {
    fifo_order_.push_back(tenant);
  }
  total_queued_++;
}

bool AdmissionQueue::PopNext(ServeRequest* out) {
  if (total_inflight_ >= global_inflight_cap_ || total_queued_ == 0) {
    return false;
  }
  const bool popped =
      policy_ == AdmissionPolicy::kFifo ? PopFifo(out) : PopDrr(out);
  if (popped) {
    tenants_[static_cast<size_t>(out->tenant)].inflight++;
    total_inflight_++;
    total_queued_--;
  }
  return popped;
}

bool AdmissionQueue::PopFifo(ServeRequest* out) {
  // Strict arrival order, blind to tenants: head-of-line blocking by design.
  if (fifo_order_.empty()) {
    return false;
  }
  const int tenant = fifo_order_.front();
  fifo_order_.pop_front();
  TenantState& state = tenants_[static_cast<size_t>(tenant)];
  *out = std::move(state.queue.front());
  state.queue.pop_front();
  return true;
}

bool AdmissionQueue::PopDrr(ServeRequest* out) {
  // Visit tenants round-robin from the cursor. A tenant with queued work and
  // a free in-flight slot gets kQuantumBlocks x weight of credit per visit
  // and dispatches once its deficit covers the head request's block count.
  // The scan is bounded: every full round adds credit to at least one
  // eligible tenant, so within O(max_request / quantum) rounds someone
  // affords their head — or nobody is eligible and we give up.
  const size_t n = tenants_.size();
  bool any_eligible = true;
  while (any_eligible) {
    any_eligible = false;
    for (size_t step = 0; step < n; ++step) {
      TenantState& state = tenants_[drr_cursor_];
      if (state.queue.empty()) {
        state.deficit = 0;  // idle tenants do not bank credit
        drr_cursor_ = (drr_cursor_ + 1) % n;
        drr_fresh_turn_ = true;
        continue;
      }
      if (AtCap(state)) {
        // Capped tenants keep their place (and deficit) but cannot dispatch;
        // they also must not keep accruing unbounded credit while parked.
        state.cap_deferrals++;
        drr_cursor_ = (drr_cursor_ + 1) % n;
        drr_fresh_turn_ = true;
        continue;
      }
      any_eligible = true;
      const uint64_t cost =
          std::max<uint64_t>(state.queue.front().req.nblocks, 1);
      // Credit is granted once per turn, when the cursor arrives. Re-crediting
      // mid-turn would let one tenant afford its head forever and starve the
      // rest (quantum x weight always covers one request).
      if (drr_fresh_turn_) {
        state.deficit +=
            kQuantumBlocks * std::max<uint32_t>(state.limits.weight, 1);
        drr_fresh_turn_ = false;
      }
      if (state.deficit >= cost) {
        state.deficit -= cost;
        *out = std::move(state.queue.front());
        state.queue.pop_front();
        // Keep the cursor on this tenant: it dispatches until its deficit
        // runs dry, then the next visit moves on (classic DRR round shape).
        return true;
      }
      drr_cursor_ = (drr_cursor_ + 1) % n;
      drr_fresh_turn_ = true;
    }
  }
  return false;
}

void AdmissionQueue::OnComplete(int tenant) {
  tenants_[static_cast<size_t>(tenant)].inflight--;
  total_inflight_--;
}

}  // namespace biza
