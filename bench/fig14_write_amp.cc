// Figure 14: write amplification — flash writes (data + parity segments)
// normalized to user writes, per trace model and platform.
//
// The workload is replayed OPEN-LOOP (rate-paced like a timestamped trace)
// so volatile-buffer compensation flushes happen on their real schedule:
// this is what separates mdraid's in-host-DRAM buffer (periodically flushed
// to flash) from BIZA's non-volatile ZRWA (never flushed while hot).
//
// Paper shapes: "no cache" writes 1x data + 1x parity; dmzap+RAIZN (with a
// 56 MB parity buffer) cuts 42.5% of parity writes; BIZAw/oSelector beats
// mdraid+dmzap by 32.5% on data writes; the selector shaves a further
// 12.6%; overall BIZA reduces WA by 42.7%. Workloads with long reuse
// distances (tencent) benefit least.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/wa_report.h"

namespace biza {
namespace {

struct WaCell {
  double data = 0;
  double parity = 0;
  double total() const { return data + parity; }
};

WaCell RunWa(PlatformKind kind, const TraceProfile& profile, uint64_t seed) {
  Simulator sim;
  PlatformConfig config = BenchConfig(profile.seed + 3 + seed);
  // Fair buffers (§5.4): RAIZN gets a 56 MB-equivalent parity buffer,
  // mdraid's stripe cache is matched, BIZA uses its 56 MB of ZRWA.
  config.raizn.parity_buffer_entries = 14336;
  config.mdraid.stripe_cache_blocks = 14336;
  auto platform = Platform::Create(&sim, kind, config);

  TraceProfile writes_only = profile;
  writes_only.seed += seed;
  writes_only.write_ratio = 1.0;
  writes_only.footprint_blocks =
      std::min<uint64_t>(profile.footprint_blocks,
                         platform->block()->capacity_blocks() / 2);
  SyntheticTrace trace(writes_only);
  Driver driver(&sim, platform->block(), &trace, /*iodepth=*/16);
  // ~400 MB/s of paced arrivals: one request every avg_size/rate.
  const SimTime interval =
      std::max<SimTime>(1, writes_only.avg_write_blocks * kBlockSize *
                               kSecond / (400 * 1024 * 1024));
  driver.SetArrivalInterval(interval);
  const DriverReport report = driver.Run(60000, 4 * kSecond);
  platform->Quiesce(&sim);

  const WaBreakdown wa =
      platform->CollectWa(report.bytes_written / kBlockSize);
  RecordSimEvents(sim, report);
  return WaCell{wa.DataRatio(), wa.ParityRatio()};
}

void Run() {
  PrintTitle("Figure 14",
             "write amplification (flash writes / user writes, data+parity)");
  PrintPaperNote(
      "no-cache = 1.0 data + 1.0 parity; BIZA cuts WA 42.7% vs the best "
      "baseline and 12.6% vs BIZAw/oSelector; long-reuse workloads "
      "(tencent) benefit least");

  const std::vector<PlatformKind> kinds = {
      PlatformKind::kDmzapRaizn, PlatformKind::kMdraidDmzap,
      PlatformKind::kBizaNoSelector, PlatformKind::kBiza};
  std::printf("%-10s %12s", "trace", "no-cache");
  for (PlatformKind kind : kinds) {
    std::printf(" %16s", PlatformKindName(kind));
  }
  std::printf("  (data+parity = total)\n");

  std::vector<TraceProfile> profiles;
  for (const TraceProfile& profile : TraceProfile::AllTable6()) {
    if (profile.write_ratio < 0.05) {
      continue;  // proj is read-dominated; WA is about writes
    }
    profiles.push_back(profile);
  }
  const int nseeds = BenchSeeds();
  std::printf("(%d seeds per cell, total shown as mean±stddev)\n", nseeds);
  std::vector<std::function<WaCell()>> jobs;
  for (const TraceProfile& profile : profiles) {
    for (PlatformKind kind : kinds) {
      for (int s = 0; s < nseeds; ++s) {
        jobs.push_back([kind, profile, s]() {
          return RunWa(kind, profile, static_cast<uint64_t>(s));
        });
      }
    }
  }
  const std::vector<WaCell> results = RunExperiments(std::move(jobs));

  double biza_total = 0, nosel_total = 0, best_baseline_total = 0;
  int traces = 0;
  size_t job_index = 0;
  for (const TraceProfile& profile : profiles) {
    std::printf("%-10s %5.2f+%4.2f  ", profile.name.c_str(), 1.0, 1.0);
    double row[4] = {};
    for (size_t i = 0; i < kinds.size(); ++i) {
      std::vector<double> data, parity, total;
      for (int s = 0; s < nseeds; ++s) {
        const WaCell cell = results[job_index++];
        data.push_back(cell.data);
        parity.push_back(cell.parity);
        total.push_back(cell.total());
      }
      const SeedStat t = MeanStddev(total);
      std::printf("  %4.2f+%4.2f=%4.2f±%4.2f", MeanStddev(data).mean,
                  MeanStddev(parity).mean, t.mean, t.stddev);
      row[i] = t.mean;
    }
    std::printf("\n");
    best_baseline_total += std::min(row[0], row[1]);
    nosel_total += row[2];
    biza_total += row[3];
    traces++;
  }
  std::printf("\nBIZA vs best baseline: %.1f%% lower WA (paper: 42.7%%)\n",
              (1.0 - biza_total / best_baseline_total) * 100.0);
  std::printf("BIZA vs BIZAw/oSelector: %.1f%% lower (paper: 12.6%%)\n",
              (1.0 - biza_total / nosel_total) * 100.0);
  std::printf("(ideal = all updates absorbed; no-cache = none absorbed)\n");
  (void)traces;
}

}  // namespace
}  // namespace biza

int main() {
  biza::BenchMetricScope metrics("fig14_write_amp");
  biza::Run();
  return 0;
}
