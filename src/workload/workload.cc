#include "src/workload/workload.h"

#include <algorithm>

namespace biza {

namespace {

TraceProfile Base(std::string name, double write_ratio, double avg_write_kb,
                  double avg_read_kb, double hot_write_fraction,
                  uint64_t hot_set_blocks) {
  TraceProfile p;
  p.name = std::move(name);
  p.write_ratio = write_ratio;
  p.avg_write_blocks =
      std::max<uint64_t>(1, static_cast<uint64_t>(avg_write_kb / 4.0 + 0.5));
  p.avg_read_blocks =
      std::max<uint64_t>(1, static_cast<uint64_t>(avg_read_kb / 4.0 + 0.5));
  p.hot_write_fraction = hot_write_fraction;
  p.hot_set_blocks = hot_set_blocks;
  return p;
}

}  // namespace

// Table 6 write ratios and request sizes; hot-set parameters reproduce the
// reuse-distance statements of §5.4 (small hot sets = short reuse distance).
// 56 MiB of total ZRWA is 14336 blocks: hot sets well below that absorb,
// hot sets far above it defeat the buffer.
TraceProfile TraceProfile::Casa() {
  // FIU casa: 98.6% writes, 4 KiB; 91.7% of chunks reuse within 56 MiB.
  TraceProfile p = Base("casa", 0.986, 4, 13.3, 0.92, 3000);
  p.footprint_blocks = 1 << 17;
  return p;
}
TraceProfile TraceProfile::Online() {
  // FIU online: 67.1% writes, 4 KiB, strong metadata locality.
  TraceProfile p = Base("online", 0.671, 4, 4, 0.85, 2500);
  p.footprint_blocks = 1 << 17;
  return p;
}
TraceProfile TraceProfile::Ikki() {
  TraceProfile p = Base("ikki", 0.928, 4, 10.2, 0.80, 5000);
  p.footprint_blocks = 1 << 17;
  return p;
}
TraceProfile TraceProfile::Proj() {
  // MSRC proj: 3.0% writes, large reads.
  TraceProfile p = Base("proj", 0.030, 18.5, 6.2, 0.60, 6000);
  p.footprint_blocks = 1 << 18;
  return p;
}
TraceProfile TraceProfile::Web() {
  TraceProfile p = Base("web", 0.459, 9.8, 46.4, 0.55, 8000);
  p.footprint_blocks = 1 << 18;
  return p;
}
TraceProfile TraceProfile::Dap() {
  // MSPC DAP: 51.9% writes, very large writes (121 KiB).
  TraceProfile p = Base("DAP", 0.519, 121.3, 64, 0.40, 12000);
  p.footprint_blocks = 1 << 18;
  return p;
}
TraceProfile TraceProfile::Msnfs() {
  TraceProfile p = Base("MSNFS", 0.315, 13.3, 9.8, 0.50, 9000);
  p.footprint_blocks = 1 << 18;
  return p;
}
TraceProfile TraceProfile::Lun0() {
  TraceProfile p = Base("lun0", 0.176, 9.3, 30.4, 0.45, 10000);
  p.footprint_blocks = 1 << 18;
  return p;
}
TraceProfile TraceProfile::Lun1() {
  TraceProfile p = Base("lun1", 0.380, 12.3, 20.6, 0.45, 10000);
  p.footprint_blocks = 1 << 18;
  return p;
}
TraceProfile TraceProfile::Tencent() {
  // Tencent: 52.9% writes, 39 KiB writes; 90.2% of chunks reuse BEYOND
  // 56 MiB — a cold, widely-spread working set.
  TraceProfile p = Base("tencent", 0.529, 39.2, 31.5, 0.10, 60000);
  p.footprint_blocks = 1 << 19;
  return p;
}

std::vector<TraceProfile> TraceProfile::AllTable6() {
  return {Casa(), Online(), Ikki(),  Proj(), Web(),
          Dap(),  Msnfs(),  Lun0(),  Lun1(), Tencent()};
}

TraceProfile TraceProfile::SystorLike() {
  // SYSTOR '17 VDI traces: only 17% of data has reuse distance < 14 MiB
  // (3584 blocks). A small hot set takes ~17% of writes; the rest sprawls.
  TraceProfile p = Base("systor", 0.70, 12, 16, 0.10, 1200);
  p.footprint_blocks = 1 << 20;
  return p;
}

SyntheticTrace::SyntheticTrace(const TraceProfile& profile)
    : profile_(profile),
      rng_(profile.seed),
      hot_zipf_(std::max<uint64_t>(profile.hot_set_blocks, 1),
                profile.zipf_theta, profile.seed ^ 0x5bd1e995) {}

uint64_t SyntheticTrace::SampleSize(uint64_t avg_blocks) {
  if (avg_blocks <= 1) {
    return 1;
  }
  // Geometric-ish mixture around the mean: half the requests at the mean,
  // the rest exponentially distributed, minimum one block.
  if (rng_.Chance(0.5)) {
    return avg_blocks;
  }
  const double sampled = rng_.Exponential(static_cast<double>(avg_blocks));
  return std::clamp<uint64_t>(static_cast<uint64_t>(sampled + 0.5), 1,
                              avg_blocks * 8);
}

BlockRequest SyntheticTrace::Next() {
  BlockRequest req;
  req.is_write = rng_.Chance(profile_.write_ratio);
  req.nblocks =
      SampleSize(req.is_write ? profile_.avg_write_blocks : profile_.avg_read_blocks);

  const uint64_t footprint = profile_.footprint_blocks;
  if (req.is_write && rng_.Chance(profile_.hot_write_fraction)) {
    // Hot set: zipf-skewed over the first hot_set_blocks of the footprint.
    req.offset_blocks = hot_zipf_.Next();
  } else {
    req.offset_blocks = rng_.Uniform(footprint);
  }
  if (req.offset_blocks + req.nblocks > footprint) {
    req.offset_blocks = footprint - req.nblocks;
  }
  return req;
}

}  // namespace biza
