// Figure 15: 99th / 99.99th percentile write latency after GC starts, at
// I/O depth 32 (throughput-sensitive) and 1 (latency-sensitive), for 4/64/
// 192 KiB sequential writes.
//
// Paper shapes: all platforms suffer under GC; BIZA's channel detection +
// GC avoidance cuts the spikes by 27.4% (depth 32) and 74.9% (depth 1)
// versus BIZAw/oAvoid; results normalized to BIZA with no GC running.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace biza {
namespace {

struct TailResult {
  double p99_us = 0;
  double p9999_us = 0;
};

TailResult RunCase(PlatformKind kind, uint64_t req_blocks, int iodepth,
                   bool force_gc, uint64_t seed) {
  Simulator sim;
  PlatformConfig config = BenchConfig(5 + seed);
  // Moderate utilization: GC runs steadily without starving the allocator
  // (write stalls would otherwise dominate the extreme tail identically in
  // both variants and mask the avoidance effect).
  config.biza.exposed_capacity_ratio = 0.55;
  auto platform = Platform::Create(&sim, kind, config);
  BlockTarget* target = platform->block();

  if (force_gc) {
    // Steady-state with reclaimable space: fill half, overwrite it twice.
    const uint64_t half = target->capacity_blocks() / 2;
    Driver::Fill(&sim, target, half);
    MicroWorkload churn(false, true, 8, half, 11 + seed);
    Driver churner(&sim, target, &churn, 16);
    churner.Run(2 * half / 8, 120 * kSecond);
  }

  const uint64_t footprint = target->capacity_blocks() / 4;
  MicroWorkload workload(true, true, req_blocks, footprint, 3 + seed);
  Driver driver(&sim, target, &workload, iodepth);
  // The no-GC baseline must stay a single pass (no wrap, no overwrites, no
  // reclaim); the GC rows deliberately wrap to keep GC running.
  const uint64_t max_requests =
      force_gc ? 25000 : std::min<uint64_t>(25000, footprint / req_blocks);
  const DriverReport report = driver.Run(max_requests, 4 * kSecond);
  RecordSimEvents(sim, report);
  return TailResult{
      static_cast<double>(report.write_latency.Percentile(99)) / 1e3,
      static_cast<double>(report.write_latency.Percentile(99.99)) / 1e3};
}

void Run() {
  PrintTitle("Figure 15", "tail write latency after GC starts");
  PrintPaperNote(
      "normalized to BIZA(no GC): avoidance cuts 99.99th tails by 27.4% at "
      "depth 32 and 74.9% at depth 1 vs BIZAw/oAvoid");

  const std::vector<uint64_t> sizes = {1, 16, 48};
  const int nseeds = BenchSeeds();

  // Enqueue every (iodepth, platform, gc, size, seed) cell as an independent
  // job; the print loops below walk the results in the same order, nseeds
  // consecutive results per cell.
  std::vector<std::function<TailResult()>> jobs;
  for (int iodepth : {32, 1}) {
    for (auto kind : {PlatformKind::kBiza, PlatformKind::kBizaNoAvoid}) {
      for (bool gc : {false, true}) {
        if (!gc && kind != PlatformKind::kBiza) {
          continue;
        }
        for (uint64_t blocks : sizes) {
          for (int s = 0; s < nseeds; ++s) {
            jobs.push_back([kind, blocks, iodepth, gc, s]() {
              return RunCase(kind, blocks, iodepth, gc,
                             static_cast<uint64_t>(s));
            });
          }
        }
      }
    }
  }
  const std::vector<TailResult> results = RunExperiments(std::move(jobs));

  std::printf("%d seeds per point, mean±stddev (BIZA_BENCH_SEEDS overrides)\n",
              nseeds);
  size_t job_index = 0;
  for (int iodepth : {32, 1}) {
    std::printf("--- iodepth %d (%s-sensitive) ---\n", iodepth,
                iodepth == 32 ? "throughput" : "latency");
    std::printf("%-18s %26s %26s %26s\n", "platform", "4K p99/p99.99(us)",
                "64K p99/p99.99", "192K p99/p99.99");
    double biza_tail = 0, noavoid_tail = 0;
    for (auto kind :
         {PlatformKind::kBiza, PlatformKind::kBizaNoAvoid}) {
      for (bool gc : {false, true}) {
        if (!gc && kind != PlatformKind::kBiza) {
          continue;  // the no-GC baseline only needs one platform
        }
        std::printf("%-18s", gc ? PlatformKindName(kind) : "BIZA(no GC)");
        for (uint64_t blocks : sizes) {
          (void)blocks;
          std::vector<double> p99s, p9999s;
          for (int s = 0; s < nseeds; ++s) {
            const TailResult r = results[job_index++];
            p99s.push_back(r.p99_us);
            p9999s.push_back(r.p9999_us);
          }
          const SeedStat p99 = MeanStddev(p99s);
          const SeedStat p9999 = MeanStddev(p9999s);
          std::printf("  %6.0f±%-4.0f/%7.0f±%-5.0f", p99.mean, p99.stddev,
                      p9999.mean, p9999.stddev);
          if (gc && kind == PlatformKind::kBiza) {
            biza_tail += p9999.mean;
          } else if (gc) {
            noavoid_tail += p9999.mean;
          }
        }
        std::printf("\n");
      }
    }
    std::printf("avoidance reduces 99.99th tails by %.1f%% at depth %d\n\n",
                (1.0 - biza_tail / noavoid_tail) * 100.0, iodepth);
  }
}

}  // namespace
}  // namespace biza

int main() {
  biza::BenchMetricScope metrics("fig15_tail_latency");
  biza::Run();
  return 0;
}
