#include "src/metrics/sampler.h"

#include <cassert>

namespace biza {

void TimeSeriesSampler::Start(Simulator* sim, SimTime interval_ns) {
  assert(interval_ns > 0);
  interval_ns_ = interval_ns;
  Sample(sim);  // baseline row at the start time
  sim->Schedule(interval_ns_, [this, sim]() { Tick(sim); });
}

void TimeSeriesSampler::Sample(Simulator* sim) {
  const std::vector<StatRegistry::Sample> samples = registry_->Collect();
  if (columns_.empty()) {
    columns_.reserve(samples.size());
    for (const auto& s : samples) {
      columns_.push_back(*s.name);
      kinds_.push_back(s.kind);
    }
    last_.assign(samples.size(), 0);
  }
  // Probes registered after the first tick (e.g. a hot spare attached
  // mid-run) are dropped from the series: the column set is fixed at start.
  std::vector<uint64_t> row(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size() && i < samples.size(); ++i) {
    if (kinds_[i] == StatKind::kCounter) {
      const uint64_t raw = samples[i].value;
      row[i] = raw - last_[i];
      last_[i] = raw;
    } else {
      row[i] = samples[i].value;
    }
  }
  times_.push_back(sim->Now());
  rows_.push_back(std::move(row));
}

void TimeSeriesSampler::Tick(Simulator* sim) {
  Sample(sim);
  // Keep ticking only while the workload still has events in flight;
  // otherwise the sampler would keep an idle simulation alive forever.
  if (sim->pending_events() > 0) {
    sim->Schedule(interval_ns_, [this, sim]() { Tick(sim); });
  }
}

void TimeSeriesSampler::WriteCsv(std::ostream& out) const {
  out << "time_s";
  for (const std::string& name : columns_) {
    out << ',' << name;
  }
  out << '\n';
  for (size_t r = 0; r < rows_.size(); ++r) {
    out << static_cast<double>(times_[r]) / 1e9;
    for (uint64_t v : rows_[r]) {
      out << ',' << v;
    }
    out << '\n';
  }
}

}  // namespace biza
