#include "src/metrics/stat_registry.h"

#include <cinttypes>
#include <cstdio>

namespace biza {

void StatRegistry::Register(std::string name, StatKind kind, Probe probe) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    probes_[it->second].kind = kind;
    probes_[it->second].probe = std::move(probe);
    return;
  }
  index_.emplace(name, probes_.size());
  probes_.push_back(Entry{std::move(name), kind, std::move(probe)});
}

std::vector<StatRegistry::Sample> StatRegistry::Collect() const {
  std::vector<Sample> out;
  out.reserve(probes_.size());
  for (const Entry& entry : probes_) {
    out.push_back(Sample{&entry.name, entry.kind, entry.probe()});
  }
  return out;
}

std::string StatRegistry::HistogramSummaryJson() const {
  std::string out = "{";
  bool first = true;
  char buf[256];
  for (const auto& [name, hist] : histograms_) {
    if (hist.count() == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%" PRIu64 ",\"p50_us\":%.1f,"
                  "\"p99_us\":%.1f,\"p999_us\":%.1f,\"max_us\":%.1f}",
                  first ? "" : ",", name.c_str(), hist.count(),
                  static_cast<double>(hist.Percentile(50)) / 1e3,
                  static_cast<double>(hist.Percentile(99)) / 1e3,
                  static_cast<double>(hist.Percentile(99.9)) / 1e3,
                  static_cast<double>(hist.max()) / 1e3);
    out += buf;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace biza
