# Empty dependencies file for channel_detector_test.
# This may be replaced when dependencies are built.
