// Modeled NVMe submission/completion queue pairs (the host<->device
// boundary every data-plane command crosses).
//
// Replaces the per-command dispatch path of ZnsDevice/ConvSsd — one
// ScheduleAt per command in, one CompleteAt per command out — with the
// mechanics of a real NVMe driver, following the NVMe-virt idiom (FEMU):
//
// * Per-core SQ/CQ pairs: commands rotate over `num_queues` submission
//   queues, FIFO within a queue, with a per-queue `queue_depth` cap. A
//   command that finds its SQ full parks in a host-side software queue and
//   enters the SQ when a completion frees a slot — queue depth becomes a
//   first-class experimental knob instead of an unmodelable constant.
// * Doorbell-batched submission: a doorbell ring is ONE simulator event
//   that fetches every SQE posted before it fires. Commands submitted
//   within one doorbell window ride the same event, collapsing the
//   per-command arrival events of the legacy path.
// * Round-robin arbitration: the controller drains SQs in bursts of
//   `arb_burst` commands, rotating across queues (NVMe's mandatory RR
//   arbiter). Each fetched SQE pays a serial `fetch_ns` decode cost, so a
//   deep batch sees growing per-command skew — the queue-derived delay that
//   replaces the legacy dispatch jitter.
// * Interrupt-coalesced completions: CQEs accumulate until `irq_threshold`
//   are pending or `irq_timer_ns` elapses past the first; one interrupt
//   event drains everything ready and delivers it to the host as a single
//   completion message (one outbox entry under sharded PDES).
//
// Determinism: host-side state (SQ rotation, in-flight counts, software
// overflow queues, the open batch) is touched only by host-clock events;
// device-side state (arbitration cursor, CQ, interrupt arming) only by
// device-clock events. A batch admits a command submitted at host time T
// only when its ring time D satisfies D >= T + doorbell delay — with the
// doorbell delay at or above the conservative-lookahead floor this
// guarantees the ring event has not fired yet, in both the single-clock and
// sharded engines. Everything else is a pure function of event order, so
// runs are byte-identical per (seed, shard count), exactly like the legacy
// path.
#ifndef BIZA_SRC_NVME_NVME_QUEUE_H_
#define BIZA_SRC_NVME_NVME_QUEUE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/callback.h"
#include "src/sim/simulator.h"

namespace biza {

struct NvmeQueueConfig {
  // Off by default: the device keeps its legacy base+jitter dispatch path,
  // bit-identical to pre-frontend builds.
  bool enabled = false;

  uint32_t num_queues = 4;   // SQ/CQ pairs (per-core queues on a real host)
  uint32_t queue_depth = 32; // per-SQ in-flight cap (NVMe queue depth)

  // Doorbell ring -> SQE fetch latency (MMIO write + fetch start). 0 means
  // "use the device's dispatch_base_ns"; values below that floor are
  // clamped up to it, since the floor doubles as the sharded-PDES
  // conservative lookahead.
  SimTime doorbell_ns = 0;

  // Serial per-SQE fetch/decode cost charged in arbitration order.
  SimTime fetch_ns = 200;

  // Commands the arbiter takes from one SQ before rotating (NVMe RR burst).
  uint32_t arb_burst = 8;

  // Interrupt coalescing: fire when this many CQEs are pending...
  uint32_t irq_threshold = 8;
  // ...or this long after a CQE becomes ready, whichever is earlier.
  SimTime irq_timer_ns = 16 * kMicrosecond;
};

struct NvmeQueueStats {
  uint64_t commands = 0;           // data-plane commands submitted
  uint64_t doorbells = 0;          // ring events scheduled
  uint64_t interrupts = 0;         // completion interrupts delivered
  uint64_t coalesced_commands = 0; // SQEs that rode an already-rung doorbell
  uint64_t coalesced_cqes = 0;     // CQEs delivered beyond 1 per interrupt
  uint64_t qd_stalls = 0;          // commands parked in the software queue
  uint64_t max_batch = 0;          // largest single doorbell batch

  // Simulator events the batching absorbed: in the legacy path every
  // coalesced SQE/CQE would have been its own heap event. Bench harnesses
  // add this to fired_events() so BENCH_METRIC keeps counting logical
  // command events when the frontend collapses them.
  uint64_t absorbed_events() const {
    return coalesced_commands + coalesced_cqes;
  }
};

// One device's NVMe frontend (all of its SQ/CQ pairs). Owned by the device;
// `sim` is the device's clock (a shard clock when sharded).
class NvmeQueuePair {
 public:
  // `floor_ns` is the device's dispatch_base_ns: both the minimum doorbell
  // delay and the sharded-PDES lookahead floor.
  NvmeQueuePair(Simulator* sim, const NvmeQueueConfig& config,
                SimTime floor_ns);

  bool enabled() const { return config_.enabled; }
  const NvmeQueueConfig& config() const { return config_; }
  const NvmeQueueStats& stats() const { return stats_; }

  // Host side: posts one command. `fn` executes the device handler (DoWrite
  // etc.) when the SQE is fetched; the handler must route its completion
  // through Complete() exactly once.
  void Submit(InlineCallback fn);

  // Device side, called from inside a command handler: queues the
  // completion (ready at `when` plus the command's fetch skew) on the CQ.
  void Complete(SimTime when, InlineCallback fn);

  // Commands admitted to SQs or parked in software queues but not yet
  // delivered back to the host (test/quiesce visibility).
  uint64_t inflight() const;

 private:
  struct Sqe {
    SimTime submitted = 0;
    uint32_t sq = 0;
    InlineCallback fn;
  };
  struct Batch {
    std::vector<Sqe> entries;
  };
  struct Cqe {
    SimTime ready = 0;
    uint64_t seq = 0;
    uint32_t sq = 0;
    InlineCallback fn;
  };

  static constexpr SimTime kNotArmed = ~SimTime{0};

  SimTime DoorbellNs() const;
  // Host side: places an accepted command into its SQ and makes sure a
  // doorbell ring covers it.
  void Enqueue(uint32_t sq, SimTime submitted, InlineCallback fn);
  // Host side: refills SQ slots from the software overflow queues.
  void DrainOverflow();
  // Device side: one ring event — arbitrate, fetch, execute.
  void RingDoorbell(Batch* batch);
  // Device side: schedule (or keep) an interrupt no later than `want`.
  void ArmInterrupt(SimTime want);
  // Device side: deliver every ready CQE as one host message.
  void FireInterrupt();

  Simulator* sim_;
  NvmeQueueConfig config_;
  SimTime floor_ns_;
  NvmeQueueStats stats_;

  // --- host-clock state ---------------------------------------------------
  uint64_t sq_rr_ = 0;                       // SQ rotation for new commands
  std::vector<uint32_t> inflight_;           // per-SQ occupied slots
  std::vector<std::deque<InlineCallback>> overflow_;  // QD backpressure
  // The newest batch with a scheduled ring event. The shared_ptr keeps the
  // batch alive for appends until the ring event (which holds the other
  // reference) consumes it; the admission rule (deliver_at >= T + doorbell)
  // proves the event has not fired while the host still appends.
  std::shared_ptr<Batch> open_batch_;
  SimTime open_deliver_at_ = 0;
  uint64_t host_inflight_ = 0;               // accepted - delivered

  // --- device-clock state -------------------------------------------------
  uint32_t arb_sq_ = 0;                      // RR arbitration cursor
  SimTime fetch_skew_ = 0;                   // current command's fetch delay
  uint32_t cur_sq_ = 0;                      // current command's SQ
  uint64_t cq_seq_ = 0;
  std::vector<Cqe> cq_;
  SimTime irq_at_ = kNotArmed;
  // Scratch for arbitration bucketing (device side only), reused across
  // rings so the per-doorbell path stays allocation-free.
  std::vector<std::vector<uint32_t>> arb_lists_;
  std::vector<uint32_t> arb_cursor_;
};

}  // namespace biza

#endif  // BIZA_SRC_NVME_NVME_QUEUE_H_
