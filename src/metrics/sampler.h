// Periodic time-series sampler over a StatRegistry.
//
// Every `interval_ns` of *simulated* time the sampler evaluates all
// registered probes and appends one row: counters as per-interval deltas,
// gauges as raw levels. Rows accumulate in memory and are written out as
// CSV after the run (`afa_bench --sample-csv=...`), giving
// latency-vs-time-style plots around fault / rebuild / GC events.
//
// The sampler schedules itself on the experiment's own Simulator, so its
// ticks interleave deterministically with the workload regardless of
// BIZA_THREADS: tick events only shift sequence numbers, never the relative
// order of same-timestamp workload events, and they stop once the
// simulation is otherwise idle (so RunUntilIdle still terminates).
#ifndef BIZA_SRC_METRICS_SAMPLER_H_
#define BIZA_SRC_METRICS_SAMPLER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/metrics/stat_registry.h"
#include "src/sim/simulator.h"

namespace biza {

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(StatRegistry* registry) : registry_(registry) {}

  // Takes an immediate baseline sample (t = Now, all deltas 0) and
  // schedules ticks every `interval_ns`. Call after the platform has
  // registered its probes. Ticks self-terminate when the simulator has no
  // other pending work at a tick.
  void Start(Simulator* sim, SimTime interval_ns);

  bool started() const { return interval_ns_ != 0; }
  size_t rows() const { return times_.size(); }

  // Header: time_s,<probe names in registration order>. One row per tick.
  void WriteCsv(std::ostream& out) const;

 private:
  void Sample(Simulator* sim);
  void Tick(Simulator* sim);

  StatRegistry* registry_;
  SimTime interval_ns_ = 0;
  std::vector<std::string> columns_;
  std::vector<StatKind> kinds_;
  std::vector<uint64_t> last_;  // previous raw counter values, for deltas
  std::vector<SimTime> times_;
  std::vector<std::vector<uint64_t>> rows_;
};

}  // namespace biza

#endif  // BIZA_SRC_METRICS_SAMPLER_H_
