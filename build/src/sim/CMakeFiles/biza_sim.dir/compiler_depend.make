# Empty compiler generated dependencies file for biza_sim.
# This may be replaced when dependencies are built.
