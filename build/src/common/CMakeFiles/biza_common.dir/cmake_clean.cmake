file(REMOVE_RECURSE
  "CMakeFiles/biza_common.dir/histogram.cc.o"
  "CMakeFiles/biza_common.dir/histogram.cc.o.d"
  "CMakeFiles/biza_common.dir/logging.cc.o"
  "CMakeFiles/biza_common.dir/logging.cc.o.d"
  "CMakeFiles/biza_common.dir/status.cc.o"
  "CMakeFiles/biza_common.dir/status.cc.o.d"
  "libbiza_common.a"
  "libbiza_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biza_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
