// Registry of named counters, gauges, and latency histograms.
//
// The registry is pull-based: components register *probes* — callables that
// read their existing stats structs — so the hot path pays nothing for a
// counter being observable. Probes are evaluated only when somebody asks
// (the time-series sampler, `afa_bench --stats`, tests).
//
//   counter — monotonically non-decreasing (blocks written, GC runs). The
//             sampler emits per-interval deltas for counters.
//   gauge   — instantaneous level (open zones, queue depth, ZRWA occupancy).
//             The sampler emits the raw value.
//
// Histograms are push-based by necessity (a percentile cannot be derived
// from a probe) but stay cheap: a component asks for a histogram once at
// attach time, caches the pointer, and records behind a null check. When no
// observability is attached the pointer is null and the cost is one branch.
//
// One registry belongs to one experiment (one Simulator); there is no
// locking. Registration order is deterministic — it follows platform
// construction order — and defines the sampler's CSV column order.
#ifndef BIZA_SRC_METRICS_STAT_REGISTRY_H_
#define BIZA_SRC_METRICS_STAT_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"

namespace biza {

enum class StatKind : uint8_t { kCounter, kGauge };

class StatRegistry {
 public:
  using Probe = std::function<uint64_t()>;

  // `name` is dotted: "<component><id>.<stat>", e.g. "dev0.zns.zone_resets".
  // Names must be unique; re-registering a name replaces the probe (a
  // replaced probe supports hot-swapped devices after a rebuild).
  void RegisterCounter(std::string name, Probe probe) {
    Register(std::move(name), StatKind::kCounter, std::move(probe));
  }
  void RegisterGauge(std::string name, Probe probe) {
    Register(std::move(name), StatKind::kGauge, std::move(probe));
  }

  // Find-or-create. The pointer stays valid for the registry's lifetime
  // (node-based map), so callers cache it at attach time.
  LatencyHistogram* Histogram(const std::string& name) {
    return &histograms_[name];
  }

  struct Sample {
    const std::string* name;
    StatKind kind;
    uint64_t value;
  };
  // Evaluates every probe, in registration order.
  std::vector<Sample> Collect() const;

  size_t num_probes() const { return probes_.size(); }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }

  // One JSON object mapping histogram name to {count, p50_us, p99_us,
  // p999_us, max_us}; empty histograms are skipped. This is the
  // BENCH_HISTOGRAMS payload tools/run_benches.sh folds into BENCH_sim.json.
  std::string HistogramSummaryJson() const;

 private:
  struct Entry {
    std::string name;
    StatKind kind;
    Probe probe;
  };

  void Register(std::string name, StatKind kind, Probe probe);

  std::vector<Entry> probes_;
  std::map<std::string, size_t> index_;  // name -> probes_ slot
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace biza

#endif  // BIZA_SRC_METRICS_STAT_REGISTRY_H_
