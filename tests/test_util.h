// Small helpers for driving async device/engine APIs from synchronous tests.
#ifndef BIZA_TESTS_TEST_UTIL_H_
#define BIZA_TESTS_TEST_UTIL_H_

#include <vector>

#include "src/common/status.h"
#include "src/sim/simulator.h"
#include "src/zns/zns_device.h"

namespace biza {

// Submits a ZNS write and pumps the simulator until it completes.
inline Status ZnsWriteSync(Simulator* sim, ZnsDevice* dev, uint32_t zone,
                           uint64_t offset, std::vector<uint64_t> patterns,
                           std::vector<OobRecord> oobs = {}) {
  Status out = InternalError("never completed");
  dev->SubmitWrite(zone, offset, std::move(patterns), std::move(oobs),
                   [&out](const Status& status) { out = status; });
  sim->RunUntilIdle();
  return out;
}

inline Result<ZnsDevice::ReadResult> ZnsReadSync(Simulator* sim, ZnsDevice* dev,
                                                 uint32_t zone, uint64_t offset,
                                                 uint64_t nblocks) {
  Status status = InternalError("never completed");
  ZnsDevice::ReadResult result;
  dev->SubmitRead(zone, offset, nblocks,
                  [&](const Status& s, ZnsDevice::ReadResult r) {
                    status = s;
                    result = std::move(r);
                  });
  sim->RunUntilIdle();
  if (!status.ok()) {
    return status;
  }
  return result;
}

inline Result<uint64_t> ZnsAppendSync(Simulator* sim, ZnsDevice* dev,
                                      uint32_t zone,
                                      std::vector<uint64_t> patterns) {
  Status status = InternalError("never completed");
  uint64_t offset = 0;
  dev->SubmitAppend(zone, std::move(patterns), {},
                    [&](const Status& s, uint64_t off) {
                      status = s;
                      offset = off;
                    });
  sim->RunUntilIdle();
  if (!status.ok()) {
    return status;
  }
  return offset;
}

}  // namespace biza

#endif  // BIZA_TESTS_TEST_UTIL_H_
