file(REMOVE_RECURSE
  "libbiza_core.a"
)
