# Empty dependencies file for fig10_write_micro.
# This may be replaced when dependencies are built.
