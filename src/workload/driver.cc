#include "src/workload/driver.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "src/common/logging.h"

namespace biza {

Driver::Driver(Simulator* sim, BlockTarget* target,
               WorkloadGenerator* generator, int iodepth, bool verify_reads)
    : sim_(sim),
      target_(target),
      generator_(generator),
      iodepth_(iodepth),
      verify_reads_(verify_reads) {}

bool Driver::ShouldStop() const {
  // Open-loop: the arrival process stops generating at the deadline, but
  // arrivals already queued still get issued (they arrived in the window).
  const uint64_t generated = arrival_interval_ns_ > 0 ? arrivals_ : issued_;
  return generated >= max_requests_ || sim_->Now() >= deadline_;
}

std::vector<uint64_t> Driver::TakePatternBuffer(uint64_t nblocks) {
  std::vector<uint64_t> buffer;
  if (!spare_patterns_.empty()) {
    buffer = std::move(spare_patterns_.back());
    spare_patterns_.pop_back();
  }
  buffer.resize(nblocks);
  return buffer;
}

void Driver::RecyclePatternBuffer(std::vector<uint64_t>&& buffer) {
  // Cap the pool at iodepth scale; beyond that buffers are just ballast.
  constexpr size_t kMaxSpare = 64;
  if (buffer.capacity() > 0 && spare_patterns_.size() < kMaxSpare) {
    spare_patterns_.push_back(std::move(buffer));
  }
}

void Driver::IssueLoop() {
  if (arrival_interval_ns_ > 0) {
    // Open-loop: arrivals are paced by the timer; completions only drain
    // the deferred-arrival queue.
    PumpArrivals();
    return;
  }
  // Re-entrancy guard: a target may complete a request synchronously (e.g.
  // an allocation failure), which would otherwise recurse through the
  // completion callback for every remaining request and blow the stack.
  if (in_issue_loop_) {
    return;
  }
  in_issue_loop_ = true;
  while (inflight_ < iodepth_ && !ShouldStop()) {
    IssueOne(sim_->Now());
  }
  in_issue_loop_ = false;
}

void Driver::PumpArrivals() {
  // Same re-entrancy hazard as IssueLoop: a synchronous completion would
  // recurse through here for every queued arrival.
  if (in_issue_loop_) {
    return;
  }
  in_issue_loop_ = true;
  while (inflight_ < iodepth_ && !pending_arrivals_.empty()) {
    const SimTime intended = pending_arrivals_.front();
    pending_arrivals_.pop_front();
    // Coordinated-omission fix: the wait for an iodepth slot is part of the
    // request's latency (measured from `intended` in IssueOne) and is also
    // reported separately as queue delay.
    report_.queue_delay.Record(sim_->Now() - intended);
    IssueOne(intended);
  }
  in_issue_loop_ = false;
}

void Driver::IssueOne(SimTime intended) {
  BlockRequest req = generator_->Next();
  const uint64_t cap = target_->capacity_blocks();
  // Clamp generator footprints into the target's exposed capacity.
  if (req.nblocks > cap) {
    req.nblocks = cap;
  }
  if (req.offset_blocks + req.nblocks > cap) {
    req.offset_blocks = req.offset_blocks % (cap - req.nblocks + 1);
  }
  issued_++;
  inflight_++;
  epoch_++;
  const SimTime submit = sim_->Now();
  if (req.is_write) {
    std::vector<uint64_t> patterns = TakePatternBuffer(req.nblocks);
    for (uint64_t i = 0; i < req.nblocks; ++i) {
      patterns[i] = PatternFor(req.offset_blocks + i, epoch_);
      if (verify_reads_) {
        expected_[req.offset_blocks + i] = patterns[i];
      }
    }
    const uint64_t bytes = req.nblocks * kBlockSize;
    const uint64_t offset = req.offset_blocks;
    target_->SubmitWrite(
        offset, std::move(patterns),
        [this, submit, intended, bytes, offset](const Status& status) {
          inflight_--;
          if (status.ok()) {
            report_.bytes_written += bytes;
          }
          report_.requests_completed++;
          report_.write_latency.Record(sim_->Now() - intended);
          if (tracer_ != nullptr && tracer_->Armed(submit)) {
            tracer_->Record(Tracer::kLaneDriver, span_write_, submit,
                            sim_->Now(), key_offset_,
                            static_cast<int64_t>(offset), key_blocks_,
                            static_cast<int64_t>(bytes / kBlockSize));
          }
          last_completion_ = sim_->Now();
          IssueLoop();
        });
  } else {
    const uint64_t offset = req.offset_blocks;
    const uint64_t bytes = req.nblocks * kBlockSize;
    target_->SubmitRead(
        offset, req.nblocks,
        [this, submit, intended, bytes, offset](const Status& status,
                                                std::vector<uint64_t> patterns) {
          inflight_--;
          if (status.ok()) {
            report_.bytes_read += bytes;
            if (verify_reads_) {
              for (size_t i = 0; i < patterns.size(); ++i) {
                auto it = expected_.find(offset + i);
                if (it != expected_.end() && it->second != patterns[i]) {
                  report_.verify_failures++;
                }
              }
            }
          }
          RecyclePatternBuffer(std::move(patterns));
          report_.requests_completed++;
          report_.read_latency.Record(sim_->Now() - intended);
          if (tracer_ != nullptr && tracer_->Armed(submit)) {
            tracer_->Record(Tracer::kLaneDriver, span_read_, submit,
                            sim_->Now(), key_offset_,
                            static_cast<int64_t>(offset), key_blocks_,
                            static_cast<int64_t>(bytes / kBlockSize));
          }
          last_completion_ = sim_->Now();
          IssueLoop();
        });
  }
}

DriverReport Driver::Run(uint64_t max_requests, SimTime max_duration) {
  report_ = DriverReport{};
  max_requests_ = max_requests;
  start_ = sim_->Now();
  deadline_ = start_ + max_duration;
  last_completion_ = start_;
  arrivals_ = 0;
  pending_arrivals_.clear();
  if (arrival_interval_ns_ > 0) {
    // Open-loop pacing: one arrival per interval. Arrivals that find the
    // iodepth cap full queue with their intended arrival time and issue as
    // completions free slots (PumpArrivals); their latency is measured from
    // the intended arrival, never from the delayed issue. The tick holds
    // only a weak self-reference (each scheduled event owns a strong copy),
    // so the chain has no ownership cycle and the function dies with the
    // last pending event or this scope, whichever is later.
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [this, wtick = std::weak_ptr<std::function<void()>>(tick)]() {
      if (ShouldStop()) {
        return;
      }
      arrivals_++;
      if (inflight_ >= iodepth_) {
        report_.arrivals_deferred++;
      }
      pending_arrivals_.push_back(sim_->Now());
      PumpArrivals();
      if (auto self = wtick.lock()) {
        sim_->Schedule(arrival_interval_ns_, [self]() { (*self)(); });
      }
    };
    (*tick)();
  } else {
    IssueLoop();
  }
  sim_->RunUntilIdle();
  assert(inflight_ == 0);
  assert(pending_arrivals_.empty());
  report_.elapsed_ns =
      last_completion_ > start_ ? last_completion_ - start_ : 1;
  return report_;
}

void Driver::Fill(Simulator* sim, BlockTarget* target, uint64_t blocks,
                  uint64_t request_blocks, uint64_t epoch) {
  struct FillState {
    uint64_t next = 0;
    int inflight = 0;
  };
  auto state = std::make_shared<FillState>();
  const uint64_t cap = std::min(blocks, target->capacity_blocks());
  // Keep a modest depth so the prefill finishes quickly without swamping
  // allocation paths. A small self-owning pump object avoids the lifetime
  // hazards of a self-referencing lambda.
  class Pump {
   public:
    Pump(Simulator* sim, BlockTarget* target,
         std::shared_ptr<FillState> state, uint64_t cap,
         uint64_t request_blocks, uint64_t epoch)
        : sim_(sim),
          target_(target),
          state_(std::move(state)),
          cap_(cap),
          request_blocks_(request_blocks),
          epoch_(epoch) {}
    void Go(const std::shared_ptr<Pump>& self) {
      while (state_->inflight < 8 && state_->next < cap_) {
        const uint64_t offset = state_->next;
        const uint64_t n = std::min(request_blocks_, cap_ - offset);
        state_->next += n;
        std::vector<uint64_t> patterns(n);
        for (uint64_t i = 0; i < n; ++i) {
          patterns[i] = PatternFor(offset + i, epoch_);
        }
        state_->inflight++;
        target_->SubmitWrite(offset, std::move(patterns),
                             [this, self](const Status& status) {
                               if (!status.ok()) {
                                 BIZA_LOG_WARN("fill write failed: %s",
                                               status.ToString().c_str());
                               }
                               state_->inflight--;
                               Go(self);
                             });
      }
    }

   private:
    Simulator* sim_;
    BlockTarget* target_;
    std::shared_ptr<FillState> state_;
    uint64_t cap_;
    uint64_t request_blocks_;
    uint64_t epoch_;
  };
  auto pump_obj =
      std::make_shared<Pump>(sim, target, state, cap, request_blocks, epoch);
  pump_obj->Go(pump_obj);
  sim->RunUntilIdle();
}

ZonedSeqDriver::ZonedSeqDriver(Simulator* sim, ZonedTarget* target,
                               uint64_t request_blocks, int parallel_zones)
    : sim_(sim), target_(target), request_blocks_(request_blocks) {
  const int zones = std::min<int>(parallel_zones, target_->max_open_zones());
  cursors_.resize(static_cast<size_t>(std::max(zones, 1)));
  for (size_t i = 0; i < cursors_.size(); ++i) {
    cursors_[i].zone = static_cast<uint32_t>(i);
  }
  next_zone_ = static_cast<uint32_t>(cursors_.size());
}

bool ZonedSeqDriver::ShouldStop() const {
  return issued_ >= max_requests_ || sim_->Now() >= deadline_;
}

void ZonedSeqDriver::PumpZone(size_t index) {
  ZoneCursor& cursor = cursors_[index];
  if (cursor.busy || ShouldStop()) {
    return;
  }
  const uint64_t zone_cap = target_->zone_capacity_blocks();
  if (cursor.offset + request_blocks_ > zone_cap) {
    // Zone exhausted: move to the next one (recycling old zones).
    (void)target_->FinishZone(cursor.zone);
    cursor.zone = next_zone_ % target_->num_zones();
    next_zone_++;
    (void)target_->ResetZone(cursor.zone);
    cursor.offset = 0;
  }
  const uint64_t offset = cursor.offset;
  cursor.offset += request_blocks_;
  cursor.busy = true;
  issued_++;
  inflight_++;
  std::vector<uint64_t> patterns(request_blocks_);
  for (uint64_t i = 0; i < request_blocks_; ++i) {
    patterns[i] = PatternFor(offset + i, issued_);
  }
  const SimTime submit = sim_->Now();
  const uint64_t bytes = request_blocks_ * kBlockSize;
  target_->SubmitZoneWrite(
      cursor.zone, offset, std::move(patterns),
      [this, index, submit, bytes](const Status& status) {
        inflight_--;
        cursors_[index].busy = false;
        if (status.ok()) {
          report_.bytes_written += bytes;
        }
        report_.requests_completed++;
        report_.write_latency.Record(sim_->Now() - submit);
        last_completion_ = sim_->Now();
        // Deferred re-pump: synchronous failures must not recurse.
        sim_->Schedule(0, [this, index]() { PumpZone(index); });
      },
      WriteTag::kData);
}

DriverReport ZonedSeqDriver::Run(uint64_t max_requests, SimTime max_duration) {
  report_ = DriverReport{};
  max_requests_ = max_requests;
  start_ = sim_->Now();
  deadline_ = start_ + max_duration;
  last_completion_ = start_;
  for (size_t i = 0; i < cursors_.size(); ++i) {
    PumpZone(i);
  }
  sim_->RunUntilIdle();
  report_.elapsed_ns =
      last_completion_ > start_ ? last_completion_ - start_ : 1;
  return report_;
}

}  // namespace biza
