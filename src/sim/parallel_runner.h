// Parallel experiment runner.
//
// Every experiment in this repo is a self-contained (PlatformConfig,
// workload, seed) triple evaluated on its own Simulator instance, so
// config/seed sweeps are embarrassingly parallel. RunExperiments() executes
// a list of such jobs on a pool of worker threads and returns the results
// in SUBMISSION order, so output is bit-identical to a sequential run
// regardless of thread count: job i always produces result i, and nothing a
// job touches is shared (the simulator is per-job; the only process globals
// are the log level and read-only config presets).
//
// Jobs must not print — collect results first, print after the pool drains —
// or interleaved stdout will garble bench tables.
//
// Thread count: explicit argument > BIZA_THREADS env var > hardware
// concurrency. On a single-core host this degrades to an in-place
// sequential loop with zero threading overhead.
#ifndef BIZA_SRC_SIM_PARALLEL_RUNNER_H_
#define BIZA_SRC_SIM_PARALLEL_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace biza {

// BIZA_THREADS env var if set to a positive integer, else
// std::thread::hardware_concurrency(), else 1.
int DefaultExperimentThreads();

template <typename T>
std::vector<T> RunExperiments(std::vector<std::function<T()>> jobs,
                              int threads = 0) {
  if (threads <= 0) {
    threads = DefaultExperimentThreads();
  }
  std::vector<T> results(jobs.size());
  if (jobs.empty()) {
    return results;
  }
  const size_t workers =
      std::min(static_cast<size_t>(threads), jobs.size());
  if (workers <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      results[i] = jobs[i]();
    }
    return results;
  }

  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) {
        return;
      }
      try {
        results[i] = jobs[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
  return results;
}

}  // namespace biza

#endif  // BIZA_SRC_SIM_PARALLEL_RUNNER_H_
