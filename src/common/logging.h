// Minimal leveled logging. Off by default so benches stay quiet; tests and
// examples can raise the level. Not thread-safe by design: the simulator is
// single-threaded (discrete-event), so there is no concurrent logging.
#ifndef BIZA_SRC_COMMON_LOGGING_H_
#define BIZA_SRC_COMMON_LOGGING_H_

#include <cstdio>

namespace biza {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Global log threshold; messages above it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

}  // namespace biza

#define BIZA_LOG(level, ...)                                          \
  do {                                                                \
    if (static_cast<int>(level) <=                                    \
        static_cast<int>(::biza::GetLogLevel())) {                    \
      std::fprintf(stderr, "[%s] ", #level);                          \
      std::fprintf(stderr, __VA_ARGS__);                              \
      std::fprintf(stderr, "\n");                                     \
    }                                                                 \
  } while (0)

#define BIZA_LOG_ERROR(...) BIZA_LOG(::biza::LogLevel::kError, __VA_ARGS__)
#define BIZA_LOG_WARN(...) BIZA_LOG(::biza::LogLevel::kWarn, __VA_ARGS__)
#define BIZA_LOG_INFO(...) BIZA_LOG(::biza::LogLevel::kInfo, __VA_ARGS__)
#define BIZA_LOG_DEBUG(...) BIZA_LOG(::biza::LogLevel::kDebug, __VA_ARGS__)

#endif  // BIZA_SRC_COMMON_LOGGING_H_
