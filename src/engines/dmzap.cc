#include "src/engines/dmzap.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace biza {

DmZap::DmZap(Simulator* sim, ZonedTarget* backend, const DmZapConfig& config)
    : sim_(sim), backend_(backend), config_(config) {
  zone_cap_ = backend_->zone_capacity_blocks();
  const uint64_t total_blocks = zone_cap_ * backend_->num_zones();
  exposed_blocks_ = static_cast<uint64_t>(
      static_cast<double>(total_blocks) * config_.exposed_capacity_ratio);
  l2p_.assign(exposed_blocks_, kUnmapped);
  zones_.resize(backend_->num_zones());
  for (auto& z : zones_) {
    z.rmap.assign(zone_cap_, kUnmapped);
  }
  zone_queues_.resize(backend_->num_zones());
  config_.max_open_data_zones =
      std::min(config_.max_open_data_zones, backend_->max_open_zones());
}

uint64_t DmZap::FreeZones() const {
  uint64_t free = 0;
  for (const auto& z : zones_) {
    if (!z.open && !z.sealed && z.wptr == 0) {
      free++;
    }
  }
  return free;
}

void DmZap::Invalidate(uint64_t lbn) {
  const uint64_t old = l2p_[lbn];
  if (old == kUnmapped) {
    return;
  }
  const uint64_t zone = old / zone_cap_;
  const uint64_t off = old % zone_cap_;
  ZoneMeta& z = zones_[zone];
  assert(z.valid > 0);
  z.valid--;
  z.rmap[off] = kUnmapped;
  l2p_[lbn] = kUnmapped;
}

uint64_t DmZap::PickZoneForWrite(uint64_t want_blocks, bool for_gc) {
  (void)want_blocks;
  const int budget = config_.max_open_data_zones + (for_gc ? 1 : 0);
  // Opportunistically seal any drained full zones so they release their
  // open-zone slots.
  for (size_t i = open_zones_.size(); i-- > 0;) {
    SealIfFull(open_zones_[i]);
  }
  // Keep the open-zone budget saturated: the authors' revision writes ALL
  // open zones in parallel (§5.1), so parallelism requires the full set to
  // be open, not lazily grown.
  while (static_cast<int>(open_zones_.size()) < budget) {
    uint32_t found = UINT32_MAX;
    for (uint32_t zone = 0; zone < zones_.size(); ++zone) {
      ZoneMeta& z = zones_[zone];
      if (!z.open && !z.sealed && z.wptr == 0) {
        found = zone;
        break;
      }
    }
    if (found == UINT32_MAX) {
      break;
    }
    zones_[found].open = true;
    open_zones_.push_back(found);
  }
  // Round-robin across the open set for parallelism.
  for (size_t i = 0; i < open_zones_.size(); ++i) {
    const size_t index = (open_rr_ + i) % open_zones_.size();
    const uint32_t zone = open_zones_[index];
    if (zones_[zone].wptr < zone_cap_) {
      open_rr_ = index + 1;
      return zone;
    }
  }
  return kUnmapped;
}

void DmZap::SubmitWrite(uint64_t lbn, std::vector<uint64_t> patterns,
                        WriteCallback cb, WriteTag tag) {
  const uint64_t n = patterns.size();
  if (n == 0 || lbn + n > exposed_blocks_) {
    cb(OutOfRangeError("dm-zap write beyond exposed capacity"));
    return;
  }
  cpu_.Charge("dmzap", config_.costs.request_overhead_ns);
  if (tag == WriteTag::kData) {
    stats_.user_written_blocks += n;  // note: retried remainders re-count;
                                      // WA reporting uses workload counters
  }

  // Split the request into zone-contiguous segments.
  struct Join {
    int pending = 0;
    WriteCallback cb;
  };
  auto join = std::make_shared<Join>();
  join->cb = std::move(cb);

  uint64_t done = 0;
  const bool for_gc = tag == WriteTag::kGcData || tag == WriteTag::kGcParity;
  while (done < n) {
    const uint64_t zone = PickZoneForWrite(n - done, for_gc);
    if (zone == kUnmapped) {
      // No free zone. If GC or in-flight writes can make progress, park the
      // remainder until something frees (backpressure); otherwise this is a
      // genuine ENOSPC.
      MaybeStartGc();
      bool can_progress = gc_active_;
      if (!can_progress) {
        for (uint32_t z = 0; z < zones_.size() && !can_progress; ++z) {
          can_progress = zones_[z].busy || !zone_queues_[z].empty();
        }
      }
      if (can_progress) {
        const uint64_t rem_lbn = lbn + done;
        std::vector<uint64_t> rem(patterns.begin() + static_cast<long>(done),
                                  patterns.end());
        join->pending++;
        stalled_writes_.push_back(
            [this, rem_lbn, rem = std::move(rem), tag, join]() mutable {
              SubmitWrite(rem_lbn, std::move(rem),
                          [join](const Status&) {
                            if (--join->pending == 0) {
                              join->cb(OkStatus());
                            }
                          },
                          tag);
            });
      } else if (join->pending == 0) {
        join->cb(ResourceExhaustedError("dm-zap out of zones"));
      }
      return;
    }
    ZoneMeta& z = zones_[zone];
    const uint64_t take = std::min(n - done, zone_cap_ - z.wptr);
    WriteJob job;
    job.offset = z.wptr;
    job.tag = tag;
    job.enqueued_at = sim_->Now();
    job.patterns.assign(patterns.begin() + static_cast<long>(done),
                        patterns.begin() + static_cast<long>(done + take));
    job.lbns.resize(take);
    for (uint64_t i = 0; i < take; ++i) {
      const uint64_t target = lbn + done + i;
      cpu_.Charge("dmzap", config_.costs.map_update_ns);
      Invalidate(target);
      l2p_[target] = zone * zone_cap_ + z.wptr + i;
      z.rmap[z.wptr + i] = target;
      job.lbns[i] = target;
    }
    z.valid += take;
    z.wptr += take;
    join->pending++;
    job.done = [join]() {
      if (--join->pending == 0) {
        join->cb(OkStatus());
      }
    };
    EnqueueZoneWrite(static_cast<uint32_t>(zone), std::move(job));
    done += take;
  }
  MaybeStartGc();
}

void DmZap::EnqueueZoneWrite(uint32_t zone, WriteJob job) {
  zone_queues_[zone].push_back(std::move(job));
  PumpZone(zone);
}

void DmZap::PumpZone(uint32_t zone) {
  ZoneMeta& z = zones_[zone];
  if (z.busy || zone_queues_[zone].empty()) {
    return;
  }
  z.busy = true;
  WriteJob job = std::move(zone_queues_[zone].front());
  zone_queues_[zone].pop_front();
  // The single-in-flight lock: time spent queued is CPU burned spinning
  // (dm-zap implements the ordering lock as a spinlock, §5.7). One context
  // spins per zone, so the charge is clamped to the wall time since the
  // zone's previous dispatch — overlapping waiters don't multiply it.
  const SimTime wait = sim_->Now() - job.enqueued_at;
  const SimTime wall = sim_->Now() - z.last_dispatch;
  cpu_.Charge("dmzap", wait < wall ? wait : wall);
  z.last_dispatch = sim_->Now();
  const uint64_t offset = job.offset;
  const WriteTag tag = job.tag;
  auto patterns = job.patterns;
  backend_->SubmitZoneWrite(
      zone, offset, std::move(patterns),
      [this, zone, job = std::move(job)](const Status& status) mutable {
        if (!status.ok()) {
          BIZA_LOG_ERROR("dm-zap zone write failed: %s",
                         status.ToString().c_str());
        }
        OnZoneWriteDone(zone, job);
      },
      tag);
}

void DmZap::OnZoneWriteDone(uint32_t zone, const WriteJob& job) {
  ZoneMeta& z = zones_[zone];
  z.busy = false;
  // Seal BEFORE signalling completion: the completion callback may submit
  // the next request synchronously, and a full-but-unsealed zone would
  // still hold an open-zone slot.
  SealIfFull(zone);
  job.done();
  PumpZone(zone);
}

void DmZap::SealIfFull(uint32_t zone) {
  ZoneMeta& z = zones_[zone];
  if (z.open && z.wptr >= zone_cap_ && !z.busy && zone_queues_[zone].empty()) {
    (void)backend_->FinishZone(zone);
    z.open = false;
    z.sealed = true;
    open_zones_.erase(std::find(open_zones_.begin(), open_zones_.end(), zone));
    RetryStalled();  // a freed open-zone slot may unblock parked writes
  }
}

void DmZap::SubmitRead(uint64_t lbn, uint64_t nblocks, ReadCallback cb) {
  if (nblocks == 0 || lbn + nblocks > exposed_blocks_) {
    cb(OutOfRangeError("dm-zap read beyond exposed capacity"), {});
    return;
  }
  cpu_.Charge("dmzap", config_.costs.request_overhead_ns);
  stats_.user_read_blocks += nblocks;

  struct ReadState {
    std::vector<uint64_t> out;
    int pending = 0;
    bool dispatched_all = false;
    ReadCallback cb;
  };
  auto state = std::make_shared<ReadState>();
  state->out.assign(nblocks, 0);
  state->cb = std::move(cb);

  uint64_t i = 0;
  while (i < nblocks) {
    cpu_.Charge("dmzap", config_.costs.map_lookup_ns);
    const uint64_t loc = l2p_[lbn + i];
    if (loc == kUnmapped) {
      state->out[i] = 0;  // unwritten blocks read as zero
      i++;
      continue;
    }
    // Extend a physically-contiguous run.
    uint64_t run = 1;
    while (i + run < nblocks && l2p_[lbn + i + run] == loc + run &&
           (loc + run) / zone_cap_ == loc / zone_cap_) {
      run++;
    }
    const uint32_t zone = static_cast<uint32_t>(loc / zone_cap_);
    const uint64_t offset = loc % zone_cap_;
    state->pending++;
    const uint64_t out_at = i;
    backend_->SubmitZoneRead(
        zone, offset, run,
        [state, out_at](const Status& status, std::vector<uint64_t> patterns) {
          if (status.ok()) {
            for (size_t j = 0; j < patterns.size(); ++j) {
              state->out[out_at + j] = patterns[j];
            }
          }
          if (--state->pending == 0 && state->dispatched_all) {
            state->cb(OkStatus(), std::move(state->out));
          }
        });
    i += run;
  }
  state->dispatched_all = true;
  if (state->pending == 0) {
    state->cb(OkStatus(), std::move(state->out));
  }
}

// ---------------------------------------------------------------------------
// Garbage collection: greedy victim, batched migration, oblivious to data
// lifetimes (that obliviousness is what BIZA's zone group selector fixes).
// ---------------------------------------------------------------------------

void DmZap::RetryStalled() {
  if (stalled_writes_.empty()) {
    return;
  }
  std::vector<std::function<void()>> retry;
  retry.swap(stalled_writes_);
  for (auto& fn : retry) {
    fn();
  }
}

void DmZap::MaybeStartGc() {
  if (gc_active_) {
    return;
  }
  const double free_ratio = static_cast<double>(FreeZones()) /
                            static_cast<double>(zones_.size());
  if (free_ratio >= config_.gc_trigger_free_ratio) {
    return;
  }
  const uint64_t victim = PickVictim();
  if (victim == kUnmapped) {
    return;
  }
  gc_active_ = true;
  gc_victim_ = victim;
  gc_scan_offset_ = 0;
  stats_.gc_runs++;
  sim_->Schedule(0, [this]() { GcStep(); });
}

uint64_t DmZap::PickVictim() const {
  uint64_t victim = kUnmapped;
  uint64_t best_valid = ~0ULL;
  for (uint32_t zone = 0; zone < zones_.size(); ++zone) {
    const ZoneMeta& z = zones_[zone];
    if (!z.sealed) {
      continue;
    }
    if (z.valid < best_valid) {
      best_valid = z.valid;
      victim = zone;
    }
  }
  // A victim that is (almost) fully valid frees no space: collecting it
  // would just churn writes forever. Give up until invalidations appear.
  if (victim != kUnmapped &&
      best_valid >= zone_cap_ - zone_cap_ / 50) {
    return kUnmapped;
  }
  return victim;
}

void DmZap::GcStep() {
  if (gc_victim_ == kUnmapped) {
    gc_active_ = false;
    return;
  }
  const uint32_t victim = static_cast<uint32_t>(gc_victim_);
  ZoneMeta& vz = zones_[victim];

  // Gather the next batch of live blocks.
  std::vector<uint64_t> offsets;
  std::vector<uint64_t> lbns;
  while (gc_scan_offset_ < zone_cap_ &&
         offsets.size() < config_.gc_batch_blocks) {
    const uint64_t lbn = vz.rmap[gc_scan_offset_];
    if (lbn != kUnmapped && l2p_[lbn] == gc_victim_ * zone_cap_ + gc_scan_offset_) {
      offsets.push_back(gc_scan_offset_);
      lbns.push_back(lbn);
    }
    gc_scan_offset_++;
  }

  if (offsets.empty()) {
    if (gc_scan_offset_ >= zone_cap_) {
      // Victim fully migrated: recycle it.
      (void)backend_->ResetZone(victim);
      vz = ZoneMeta{};
      vz.rmap.assign(zone_cap_, kUnmapped);
      stats_.gc_zone_resets++;
      gc_victim_ = kUnmapped;
      RetryStalled();
      const double free_ratio = static_cast<double>(FreeZones()) /
                                static_cast<double>(zones_.size());
      if (free_ratio < config_.gc_stop_free_ratio) {
        const uint64_t next = PickVictim();
        if (next != kUnmapped) {
          gc_victim_ = next;
          gc_scan_offset_ = 0;
          sim_->Schedule(0, [this]() { GcStep(); });
          return;
        }
      }
      gc_active_ = false;
      return;
    }
    sim_->Schedule(0, [this]() { GcStep(); });
    return;
  }

  // Read the batch (per-run reads), then rewrite through the normal
  // allocation path and continue.
  struct GcBatch {
    std::vector<uint64_t> lbns;
    std::vector<uint64_t> patterns;
    int pending = 0;
    bool dispatched_all = false;
  };
  auto batch = std::make_shared<GcBatch>();
  batch->lbns = lbns;
  batch->patterns.assign(lbns.size(), 0);

  auto rewrite = [this, batch]() {
    // Re-check liveness: the user may have overwritten blocks mid-read.
    int outstanding = 0;
    auto finish = std::make_shared<std::function<void()>>([this]() {
      sim_->Schedule(0, [this]() { GcStep(); });
    });
    struct Waiter {
      int n = 0;
      std::shared_ptr<std::function<void()>> finish;
      ~Waiter() { (*finish)(); }
    };
    auto waiter = std::make_shared<Waiter>();
    waiter->finish = finish;
    for (size_t i = 0; i < batch->lbns.size(); ++i) {
      const uint64_t lbn = batch->lbns[i];
      const uint64_t loc = l2p_[lbn];
      if (loc == kUnmapped ||
          loc / zone_cap_ != gc_victim_) {
        continue;  // overwritten during migration
      }
      outstanding++;
      stats_.gc_migrated_blocks++;
      SubmitWrite(lbn, {batch->patterns[i]},
                  [waiter](const Status&) {}, WriteTag::kGcData);
    }
    (void)outstanding;
  };

  for (size_t i = 0; i < offsets.size(); ++i) {
    batch->pending++;
    const size_t at = i;
    backend_->SubmitZoneRead(
        victim, offsets[i], 1,
        [batch, at, rewrite](const Status& status,
                             std::vector<uint64_t> patterns) {
          if (status.ok() && !patterns.empty()) {
            batch->patterns[at] = patterns[0];
          }
          if (--batch->pending == 0 && batch->dispatched_all) {
            rewrite();
          }
        });
  }
  batch->dispatched_all = true;
  if (batch->pending == 0) {
    rewrite();
  }
}

}  // namespace biza
