// Configuration of the BIZA array engine.
#ifndef BIZA_SRC_BIZA_BIZA_CONFIG_H_
#define BIZA_SRC_BIZA_BIZA_CONFIG_H_

#include <cstdint>

#include "src/biza/channel_detector.h"
#include "src/biza/ghost_cache.h"
#include "src/metrics/cpu_account.h"
#include "src/common/units.h"

namespace biza {

struct BizaConfig {
  // Fault-tolerance degree m: 1 = RAID 5 (XOR parity, the paper's default),
  // 2 = RAID 6 (Reed-Solomon P+Q), higher values also work. Stripes carry
  // k = num_ssds - m data chunks.
  int num_parity = 1;

  // Fraction of the array's data capacity exposed to users; the remainder
  // is over-provisioning for the log-structured write path and GC.
  double exposed_capacity_ratio = 0.70;

  // Open-zone budget per device, split across zone groups (§4.2). The sum
  // must not exceed the device's max_open_zones.
  int zrwa_group_zones = 3;     // high-profit chunks
  int gc_aware_group_zones = 3; // high-revenue chunks
  int trivial_group_zones = 3;  // everything else
  int parity_group_zones = 2;   // stripe parities (always ZRWA-reserved)
  int gc_dest_zones = 2;        // GC migration destinations ("GC-interfered")

  // Ablations (Fig. 14 / Fig. 15).
  bool enable_selector = true;       // false = BIZAw/oSelector
  bool enable_gc_avoidance = true;   // false = BIZAw/oAvoid

  GhostCacheConfig ghost;  // hp_reuse_threshold is derived if left 0
  ChannelDetectorConfig detector;

  // Zones per device confirmed by the start-up zone-to-zone diagnosis.
  int diagnosis_confirmed_zones = 2;

  double gc_trigger_free_ratio = 0.20;
  double gc_stop_free_ratio = 0.28;
  uint64_t gc_batch_blocks = 16;
  // Batch GC / rebuild migration I/O: contiguous victim blocks are read with
  // one device command per run, and a batch's data chunks are re-homed
  // through one gather write (one partial-parity refresh) instead of one
  // single-block array request each — O(1) simulator events per batch leg.
  // Off = the legacy per-chunk paths, kept for equivalence tests.
  bool batched_gc_io = true;
  // BUSY attribution extensions beyond the paper's GC-destination tag:
  // `busy_tag_victim` also tags the victim zone's channel while it is read
  // (off by default: measurements showed it over-constrains placement);
  // `erase_cooldown` keeps a channel tagged through the multi-ms erase that
  // follows a zone reset (on by default: the erase is the biggest spike).
  bool busy_tag_victim = false;
  bool erase_cooldown = true;

  // Free zones per device reserved for GC destinations and stripe parity;
  // data-group replenishment never takes them, so GC always has room to
  // migrate into and stripes always get a parity block.
  uint64_t reserved_zones = 3;

  // When true the constructor skips opening the initial zone groups; the
  // caller must invoke Recover(), which rebuilds state from the devices'
  // OOB records and then opens fresh groups. Use this to attach a new
  // engine instance to devices that already hold data (host crash).
  bool recover_mode = false;

  // Bounded retry-with-backoff for transient device errors (fault plane):
  // an I/O is retried up to max_io_retries times, the i-th retry after
  // RetryBackoffNs(i, retry_backoff_base_ns). Errors surface to the caller
  // only once retries are exhausted.
  int max_io_retries = 3;
  SimTime retry_backoff_base_ns = 10 * kMicrosecond;

  // Online-rebuild throttle: the rebuilder reconstructs up to
  // rebuild_batch_stripes stripes, then yields the array for
  // rebuild_interval_ns before the next batch, bounding its interference
  // with foreground I/O.
  uint64_t rebuild_batch_stripes = 64;
  SimTime rebuild_interval_ns = 200 * kMicrosecond;

  CpuCostModel costs;
};

}  // namespace biza

#endif  // BIZA_SRC_BIZA_BIZA_CONFIG_H_
