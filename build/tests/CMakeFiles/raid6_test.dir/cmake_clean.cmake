file(REMOVE_RECURSE
  "CMakeFiles/raid6_test.dir/raid6_test.cc.o"
  "CMakeFiles/raid6_test.dir/raid6_test.cc.o.d"
  "raid6_test"
  "raid6_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid6_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
