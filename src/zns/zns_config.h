// Configuration of a simulated ZNS SSD.
//
// Presets mirror the commodity devices of Table 2 in the paper; capacities
// are scaled down (zones shrink, ratios stay) so garbage collection and
// endurance phenomena appear within seconds of simulated time.
#ifndef BIZA_SRC_ZNS_ZNS_CONFIG_H_
#define BIZA_SRC_ZNS_ZNS_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"
#include "src/nand/nand_backend.h"
#include "src/nvme/nvme_queue.h"

namespace biza {

struct ZnsConfig {
  std::string model = "SIM-ZN540";

  // Geometry (in 4 KiB logical blocks).
  uint64_t zone_capacity_blocks = 6144;  // 24 MiB zones (scaled-down ZN540)
  uint32_t num_zones = 128;

  // ZRWA window per open zone, in blocks. 0 disables ZRWA support entirely.
  uint32_t zrwa_blocks = 256;  // 1 MiB, as on the ZN540

  int max_open_zones = 14;

  // NAND timing / parallelism.
  NandTimingConfig timing;

  // Probability that an opened zone is NOT mapped round-robin to channels
  // (models wear-leveling decisions hidden behind the ZNS interface, §3.3).
  double wear_level_deviation = 0.0;

  // Legacy submission path (nvme.enabled == false): every command reaches
  // the device at submit_time + base + U[0, jitter). Non-zero jitter
  // reorders in-flight commands like the Linux block layer / NVMe driver
  // (§3.2), but is DEPRECATED as a model: it makes queue depth, queue
  // count and batching unmodelable. Prefer the NVMe queue-pair frontend
  // below, which derives dispatch delay from doorbell batching, round-robin
  // arbitration and SQE fetch order. The legacy default stays bit-identical
  // to pre-frontend builds; `dispatch_base_ns` also remains the
  // conservative-lookahead floor of the sharded engine in both modes.
  SimTime dispatch_base_ns = 2 * kMicrosecond;
  SimTime dispatch_jitter_ns = 8 * kMicrosecond;  // deprecated, see above

  // Modeled NVMe SQ/CQ pairs (src/nvme/nvme_queue.h). Disabled by default;
  // when enabled, dispatch_jitter_ns is ignored and the dispatch RNG is
  // never consumed.
  NvmeQueueConfig nvme;

  // Future-ZNS extension (§6 of the paper): expose the zone-to-channel
  // mapping in the OPEN command's completion. When set, DebugChannelOf()
  // becomes an architected interface (ChannelOf) instead of an oracle, and
  // BIZA can skip guess-and-verify entirely.
  bool expose_channel_on_open = false;

  // Buffer-drain allowance: a ZRWA write that triggers an implicit commit
  // stalls only for the part of the flush beyond this backlog (models the
  // finite but non-zero depth of the device write buffer).
  SimTime zrwa_flush_allowance_ns = 300 * kMicrosecond;

  uint64_t seed = 1;

  // Dense reference mode: preallocate every zone's per-block state up front
  // (the pre-sparse layout). Behaviour is identical to the default lazy
  // chunked state — the sparse-vs-dense equivalence tests assert exactly
  // that — but resident memory scales with raw capacity, so leave this off
  // for full-geometry runs.
  bool dense_state = false;

  // Full-size WD Ultrastar DC ZN540: 904 zones x 1077 MiB per the paper's
  // Table 2 (275,712 four-KiB blocks per zone).
  static constexpr uint32_t kFullZn540Zones = 904;
  static constexpr uint64_t kFullZn540ZoneBlocks = 1077 * kMiB / kBlockSize;

  uint64_t capacity_blocks() const {
    return zone_capacity_blocks * num_zones;
  }
  uint64_t zone_capacity_bytes() const {
    return zone_capacity_blocks * kBlockSize;
  }

  // Scaled-down WD Ultrastar DC ZN540: 1 MiB ZRWA, 14 open zones, 8 channels.
  static ZnsConfig Zn540(uint32_t num_zones = 128,
                         uint64_t zone_capacity_blocks = 6144);

  // The other Table 2 devices (for tab02_zrwa_configs and sensitivity work).
  static ZnsConfig DapuJ5500z();
  static ZnsConfig InspurNs8600g();
  static ZnsConfig SamsungPm1731a();
};

}  // namespace biza

#endif  // BIZA_SRC_ZNS_ZNS_CONFIG_H_
