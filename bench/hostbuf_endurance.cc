// Host write-buffer endurance: device writes and write amplification as a
// function of host-side buffer size, for the BIZA and ZapRAID engines.
//
// The buffer sits between the workload and the array, absorbing sub-ZRWA
// hot updates (repeat writes to a pooled block cost zero device writes) and
// flushing zone-sized contiguous runs. Two opposing effects compete:
//
//  - ERODE: every absorbed hot update is a device write that never happens,
//    so the device-level WA input shrinks — and what does reach the device
//    arrives as large sequential runs that stripe and GC cleanly.
//  - COMPOUND: what survives the pool has had its short-reuse content
//    stripped out, so the residue is colder and BIZA's selector has less
//    hot/cold contrast to exploit; an engine whose endurance depends on
//    absorbing hot updates itself (BIZA's ZRWA in-place path) loses those
//    wins to the buffer rather than gaining new ones.
//
// Machine-readable HOSTBUF_ENDURANCE lines feed tools/compare_bench.py;
// EXPERIMENTS.md records the erode-vs-compound conclusion.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/wa_report.h"

namespace biza {
namespace {

struct EnduranceCell {
  double user_blocks = 0;    // blocks the workload wrote (front of buffer)
  double device_blocks = 0;  // blocks the devices received from the engine
  double wa_total = 0;       // flash programs / user blocks
  double absorbed = 0;       // hot updates retired inside the pool
  double flush_runs = 0;
};

EnduranceCell RunCase(PlatformKind kind, uint64_t hostbuf_blocks,
                      uint64_t seed) {
  Simulator sim;
  TraceProfile profile = TraceProfile::Casa();
  PlatformConfig config = BenchConfig(profile.seed + 11 + seed);
  if (hostbuf_blocks > 0) {
    config.hostbuf.enabled = true;
    config.hostbuf.mode = HostBufferMode::kWriteBack;
    config.hostbuf.capacity_blocks = hostbuf_blocks;
  }
  auto platform = Platform::Create(&sim, kind, config);

  // CASA-shaped write stream: half the writes hammer a small hot set — the
  // regime where host-side absorption competes with the engine's own
  // hot-update machinery (ZRWA in-place for BIZA, none for ZapRAID).
  TraceProfile writes_only = profile;
  writes_only.seed += seed;
  writes_only.write_ratio = 1.0;
  writes_only.footprint_blocks = std::min<uint64_t>(
      profile.footprint_blocks, platform->block()->capacity_blocks() / 2);
  SyntheticTrace trace(writes_only);
  Driver driver(&sim, platform->block(), &trace, /*iodepth=*/16);
  const SimTime interval =
      std::max<SimTime>(1, writes_only.avg_write_blocks * kBlockSize *
                               kSecond / (400 * 1024 * 1024));
  driver.SetArrivalInterval(interval);
  const DriverReport report = driver.Run(40000, 3 * kSecond);
  platform->Quiesce(&sim);

  EnduranceCell cell;
  cell.user_blocks =
      static_cast<double>(report.bytes_written / kBlockSize);
  uint64_t device_host_written = 0;
  for (const ZnsDevice* dev : platform->zns_devices()) {
    device_host_written += dev->stats().host_written_blocks;
  }
  cell.device_blocks = static_cast<double>(device_host_written);
  const WaBreakdown wa =
      platform->CollectWa(report.bytes_written / kBlockSize);
  cell.wa_total = wa.TotalRatio();
  if (platform->hostbuf() != nullptr) {
    cell.absorbed =
        static_cast<double>(platform->hostbuf()->stats().absorbed_blocks);
    cell.flush_runs =
        static_cast<double>(platform->hostbuf()->stats().flush_runs);
  }
  RecordSimEvents(sim, report);
  return cell;
}

void Run() {
  PrintTitle("Host-buffer endurance",
             "device writes and WA vs host write-buffer size");
  PrintPaperNote(
      "absorption erodes device writes for both engines at a similar rate "
      "(~20% at a 16 MiB pool), so the host tier compounds both engines' "
      "endurance and BIZA keeps its on-device WA lead — it does not erode "
      "BIZA's advantage even though ZRWA and the pool chase the same "
      "short-reuse updates");

  const std::vector<std::pair<const char*, PlatformKind>> kinds = {
      {"biza", PlatformKind::kBiza}, {"zapraid", PlatformKind::kZapRaid}};
  // 0 = no buffer; then 1/4/16 MiB pools (256 KiB blocks each = 4 KiB).
  const std::vector<uint64_t> sizes = {0, 256, 1024, 4096};

  const int nseeds = BenchSeeds();
  std::vector<std::function<EnduranceCell()>> jobs;
  for (const auto& [name, kind] : kinds) {
    (void)name;
    for (uint64_t size : sizes) {
      for (int seed = 0; seed < nseeds; ++seed) {
        const PlatformKind k = kind;
        jobs.push_back([k, size, seed]() {
          return RunCase(k, size, static_cast<uint64_t>(seed));
        });
      }
    }
  }
  const std::vector<EnduranceCell> results = RunExperiments(std::move(jobs));

  std::printf("%d seeds per cell, CASA-shaped write stream, write-back pool\n\n",
              nseeds);
  std::printf("%-9s %10s %14s %14s %10s %10s %10s\n", "engine", "pool_kb",
              "user_blocks", "device_blocks", "dev/user", "wa_total",
              "absorbed");
  size_t job_index = 0;
  for (const auto& [name, kind] : kinds) {
    (void)kind;
    double baseline_device = 0;
    for (uint64_t size : sizes) {
      std::vector<double> user, device, wa, absorbed;
      for (int seed = 0; seed < nseeds; ++seed) {
        const EnduranceCell& c = results[job_index++];
        user.push_back(c.user_blocks);
        device.push_back(c.device_blocks);
        wa.push_back(c.wa_total);
        absorbed.push_back(c.absorbed);
      }
      const SeedStat u = MeanStddev(user);
      const SeedStat d = MeanStddev(device);
      const SeedStat w = MeanStddev(wa);
      const SeedStat ab = MeanStddev(absorbed);
      if (size == 0) {
        baseline_device = d.mean;
      }
      const double dev_per_user = u.mean > 0 ? d.mean / u.mean : 0.0;
      std::printf("%-9s %10llu %14.0f %14.0f %10.3f %10.3f %10.0f\n", name,
                  static_cast<unsigned long long>(size * 4), u.mean, d.mean,
                  dev_per_user, w.mean, ab.mean);
      std::printf(
          "HOSTBUF_ENDURANCE {\"engine\":\"%s\",\"pool_kb\":%llu,"
          "\"user_blocks\":%.0f,\"device_blocks\":%.0f,"
          "\"device_per_user\":%.4f,\"wa_total\":%.4f,\"absorbed\":%.0f,"
          "\"device_writes_vs_nobuf\":%.4f}\n",
          name, static_cast<unsigned long long>(size * 4), u.mean, d.mean,
          dev_per_user, w.mean, ab.mean,
          baseline_device > 0 ? d.mean / baseline_device : 1.0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace biza

int main() {
  biza::BenchMetricScope metrics("hostbuf_endurance");
  biza::Run();
  return 0;
}
