#include "src/convssd/conv_ssd.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace biza {

ConvSsd::ConvSsd(Simulator* sim, const ConvSsdConfig& config)
    : sim_(sim),
      config_(config),
      backend_(std::make_unique<NandBackend>(sim, config.timing)),
      nvmeq_(sim, config.nvme, config.dispatch_base_ns),
      rng_(config.seed) {
  const uint64_t physical_pages = static_cast<uint64_t>(
      static_cast<double>(config_.capacity_blocks) *
      (1.0 + config_.over_provision));
  num_flash_blocks_ =
      (physical_pages + config_.pages_per_flash_block - 1) /
      config_.pages_per_flash_block;
  // Keep at least a handful of spare blocks so GC always has a destination.
  num_flash_blocks_ = std::max<uint64_t>(num_flash_blocks_, 8);
  total_pages_ = num_flash_blocks_ * config_.pages_per_flash_block;

  // One chunk per flash block when blocks are small; cap at 1024 entries so
  // huge erase units don't inflate the first-touch cost.
  const uint64_t chunk =
      std::min<uint64_t>(config_.pages_per_flash_block, 1024);
  p2l_ = ChunkedArray<uint64_t>(total_pages_, chunk, kUnmapped);
  page_pattern_ = ChunkedArray<uint64_t>(total_pages_, chunk, 0);
  if (config_.dense_state) {
    p2l_.PreallocateAll();
    page_pattern_.PreallocateAll();
  }
  flash_blocks_.resize(num_flash_blocks_);
  for (uint64_t b = 0; b < num_flash_blocks_; ++b) {
    flash_blocks_[b].channel =
        static_cast<int>(b % static_cast<uint64_t>(config_.timing.num_channels));
  }
  free_blocks_ = num_flash_blocks_;
  // Claim one active block per channel: user writes stripe across channels.
  const int channels = config_.timing.num_channels;
  active_blocks_.assign(static_cast<size_t>(channels), kUnmapped);
  for (uint64_t b = 0; b < num_flash_blocks_ && channels > 0; ++b) {
    const int ch = flash_blocks_[b].channel;
    if (active_blocks_[static_cast<size_t>(ch)] == kUnmapped) {
      active_blocks_[static_cast<size_t>(ch)] = b;
      flash_blocks_[b].free = false;
      free_blocks_--;
    }
  }
}

uint64_t ConvSsd::GrabFreeBlock(int channel_pref) {
  uint64_t fallback = kUnmapped;
  for (uint64_t b = 0; b < num_flash_blocks_; ++b) {
    if (!flash_blocks_[b].free) {
      continue;
    }
    if (channel_pref < 0 || flash_blocks_[b].channel == channel_pref) {
      flash_blocks_[b].free = false;
      flash_blocks_[b].next_page = 0;
      flash_blocks_[b].valid_pages = 0;
      free_blocks_--;
      return b;
    }
    if (fallback == kUnmapped) {
      fallback = b;
    }
  }
  if (fallback == kUnmapped) {
    return kUnmapped;  // exhausted; caller falls back to the GC block
  }
  flash_blocks_[fallback].free = false;
  flash_blocks_[fallback].next_page = 0;
  flash_blocks_[fallback].valid_pages = 0;
  free_blocks_--;
  return fallback;
}

SimTime ConvSsd::DispatchDelay() {
  SimTime delay = config_.dispatch_base_ns;
  if (config_.dispatch_jitter_ns > 0) {
    delay += rng_.Uniform(config_.dispatch_jitter_ns);
  }
  return delay;
}

void ConvSsd::AttachObservability(Observability* obs, int device_id) {
  if (obs == nullptr) {
    backend_->SetTracer(nullptr, device_id);
    return;
  }
  const std::string prefix = "dev" + std::to_string(device_id) + ".conv.";
  StatRegistry& reg = obs->registry;
  reg.RegisterCounter(prefix + "host_written_blocks",
                      [this] { return stats_.host_written_blocks; });
  reg.RegisterCounter(prefix + "flash_programmed_blocks",
                      [this] { return stats_.flash_programmed_blocks; });
  reg.RegisterCounter(prefix + "gc_migrated_blocks",
                      [this] { return stats_.gc_migrated_blocks; });
  reg.RegisterCounter(prefix + "host_read_blocks",
                      [this] { return stats_.host_read_blocks; });
  reg.RegisterCounter(prefix + "erases", [this] { return stats_.erases; });
  reg.RegisterCounter(prefix + "gc_runs", [this] { return stats_.gc_runs; });
  reg.RegisterGauge(prefix + "free_blocks", [this] { return free_blocks_; });
  if (nvmeq_.enabled()) {
    reg.RegisterCounter(prefix + "nvme.doorbells",
                        [this] { return nvmeq_.stats().doorbells; });
    reg.RegisterCounter(prefix + "nvme.interrupts",
                        [this] { return nvmeq_.stats().interrupts; });
    reg.RegisterCounter(prefix + "nvme.qd_stalls",
                        [this] { return nvmeq_.stats().qd_stalls; });
  }
  backend_->SetTracer(&obs->tracer, device_id);
}

void ConvSsd::SubmitWrite(uint64_t lbn, std::vector<uint64_t> patterns,
                          WriteCallback cb, WriteTag tag) {
  // Arrival is anchored on the host clock (the submitting event's time);
  // unsharded, HostNow() == Now().
  AtArrival([this, lbn, patterns = std::move(patterns), cb = std::move(cb),
             tag]() mutable {
    DoWrite(lbn, std::move(patterns), std::move(cb), tag);
  });
}

uint64_t ConvSsd::AllocatePage(int channel) {
  uint64_t& active = active_blocks_[static_cast<size_t>(channel)];
  if (active == kUnmapped ||
      flash_blocks_[active].next_page >= config_.pages_per_flash_block) {
    active = GrabFreeBlock(channel);
  }
  if (active == kUnmapped) {
    // Device-level exhaustion: steal capacity from another channel's
    // active block (real FTLs never fail a write while any page is free).
    for (uint64_t candidate : active_blocks_) {
      if (candidate != kUnmapped &&
          flash_blocks_[candidate].next_page < config_.pages_per_flash_block) {
        active = candidate;
        break;
      }
    }
  }
  // Emergency path: every pool is dry. Collect synchronously until a block
  // frees up rather than indexing flash_blocks_[kUnmapped].
  while (active == kUnmapped && CollectOne()) {
    active = GrabFreeBlock(channel);
  }
  assert(active != kUnmapped && "FTL truly out of pages");
  FlashBlock& block = flash_blocks_[active];
  const uint64_t ppn = active * config_.pages_per_flash_block + block.next_page;
  block.next_page++;
  block.valid_pages++;
  return ppn;
}

void ConvSsd::MaybeRunGc() {
  const double free_ratio = static_cast<double>(free_blocks_) /
                            static_cast<double>(num_flash_blocks_);
  if (free_ratio >= config_.gc_trigger_free_ratio) {
    return;
  }
  stats_.gc_runs++;
  // The per-collect net gain is fractional (free a victim, consume most of
  // a destination), so the integer free count oscillates; allow a bounded
  // number of non-increasing collects before giving up so the long-run
  // positive drift can materialise.
  int stalled = 0;
  while (static_cast<double>(free_blocks_) /
             static_cast<double>(num_flash_blocks_) <
         config_.gc_stop_free_ratio) {
    const uint64_t before = free_blocks_;
    if (!CollectOne()) {
      break;  // no victim at all
    }
    if (free_blocks_ <= before) {
      if (++stalled > 20) {
        break;  // fully-valid victims only: nothing reclaimable
      }
    } else {
      stalled = 0;
    }
  }
}

bool ConvSsd::CollectOne() {
  // Greedy victim: the sealed block with the fewest valid pages.
  uint64_t victim = kUnmapped;
  uint64_t best_valid = ~0ULL;
  for (uint64_t b = 0; b < num_flash_blocks_; ++b) {
    const FlashBlock& block = flash_blocks_[b];
    if (block.free || b == gc_active_block_) {
      continue;
    }
    bool is_active = false;
    for (uint64_t active : active_blocks_) {
      if (active == b) {
        is_active = true;
        break;
      }
    }
    if (is_active || block.next_page < config_.pages_per_flash_block) {
      continue;  // open blocks and unsealed blocks are not victims
    }
    if (block.valid_pages < best_valid) {
      best_valid = block.valid_pages;
      victim = b;
    }
  }
  if (victim == kUnmapped) {
    return false;
  }
  FlashBlock& vblock = flash_blocks_[victim];
  const int channel = vblock.channel;
  uint64_t migrated = 0;
  // Batched mode coalesces the migration transfers into one read run off the
  // victim plus one program run per destination segment, instead of a
  // page-interleaved read/program pair per live page.
  uint64_t run_pages = 0;
  int run_prog_channel = -1;
  auto flush_runs = [&] {
    if (run_pages > 0) {
      backend_->ReadRun(channel, run_pages, kBlockSize);
      backend_->ProgramRun(run_prog_channel, run_pages, kBlockSize);
      run_pages = 0;
    }
  };
  for (uint64_t p = 0; p < config_.pages_per_flash_block; ++p) {
    const uint64_t ppn = victim * config_.pages_per_flash_block + p;
    const uint64_t lbn = p2l_.Get(ppn);
    if (lbn == kUnmapped) {
      continue;
    }
    // Migrate: read from the victim, program to a GC destination block.
    if (gc_active_block_ == kUnmapped ||
        flash_blocks_[gc_active_block_].next_page >=
            config_.pages_per_flash_block) {
      flush_runs();
      gc_active_block_ = GrabFreeBlock(/*channel_pref=*/-1);
      if (gc_active_block_ == kUnmapped) {
        return false;  // no destination: abandon this collection attempt
      }
    }
    FlashBlock& dest = flash_blocks_[gc_active_block_];
    const uint64_t new_ppn =
        gc_active_block_ * config_.pages_per_flash_block + dest.next_page;
    dest.next_page++;
    dest.valid_pages++;
    p2l_.Mut(new_ppn) = lbn;
    page_pattern_.Mut(new_ppn) = page_pattern_.Get(ppn);
    l2p_.Set(lbn, new_ppn);
    p2l_.Mut(ppn) = kUnmapped;
    migrated++;
    if (config_.batched_gc_io) {
      run_prog_channel = dest.channel;
      run_pages++;
    } else {
      backend_->Read(channel, kBlockSize);
      backend_->BackgroundProgram(dest.channel, kBlockSize);
    }
  }
  flush_runs();
  stats_.gc_migrated_blocks += migrated;
  stats_.flash_programmed_blocks += migrated;
  stats_.flash_by_tag[static_cast<int>(WriteTag::kGcData)] += migrated;
  backend_->Erase(channel);
  stats_.erases++;
  vblock.free = true;
  vblock.next_page = 0;
  vblock.valid_pages = 0;
  free_blocks_++;
  // The erased block's pages are all invalid now: give their chunks back.
  if (!config_.dense_state) {
    const uint64_t lo = victim * config_.pages_per_flash_block;
    const uint64_t hi = lo + config_.pages_per_flash_block;
    p2l_.ClearRange(lo, hi);
    page_pattern_.ClearRange(lo, hi);
  }
  return true;
}

void ConvSsd::DoWrite(uint64_t lbn, std::vector<uint64_t> patterns,
                      WriteCallback cb, WriteTag tag) {
  auto fail = [this, &cb](Status status) {
    CompleteIoNow(
        [cb = std::move(cb), status = std::move(status)] { cb(status); });
  };
  Status fault = FaultCheck(IoKind::kWrite);
  if (!fault.ok()) {
    fail(std::move(fault));
    return;
  }
  const uint64_t n = patterns.size();
  if (n == 0 || lbn + n > config_.capacity_blocks) {
    fail(OutOfRangeError("write beyond capacity"));
    return;
  }
  SimTime done = sim_->Now();
  // Stripe the write across channels in sub-chunks (FTL page striping).
  constexpr uint64_t kStripeChunkBlocks = 8;  // 32 KiB per channel hop
  uint64_t i = 0;
  while (i < n) {
    // Re-check per chunk, not once per request: a large request can consume
    // more free blocks than the GC trigger margin holds, and the FTL must
    // never allocate from a dry pool.
    MaybeRunGc();
    const uint64_t take = std::min(kStripeChunkBlocks, n - i);
    const int channel = static_cast<int>(
        write_rr_++ % static_cast<size_t>(config_.timing.num_channels));
    for (uint64_t j = 0; j < take; ++j) {
      const uint64_t target = lbn + i + j;
      const uint64_t old_ppn = L2p(target);
      if (old_ppn != kUnmapped) {
        // Invalidate the stale page.
        const uint64_t old_block = old_ppn / config_.pages_per_flash_block;
        flash_blocks_[old_block].valid_pages--;
        p2l_.Mut(old_ppn) = kUnmapped;
      }
      const uint64_t ppn = AllocatePage(channel);
      l2p_.Set(target, ppn);
      p2l_.Mut(ppn) = target;
      page_pattern_.Mut(ppn) = patterns[i + j];
    }
    const SimTime chunk_done = backend_->Write(channel, take * kBlockSize);
    done = std::max(done, chunk_done);
    i += take;
  }
  stats_.host_written_blocks += n;
  stats_.flash_programmed_blocks += n;
  stats_.flash_by_tag[static_cast<int>(tag)] += n;
  CompleteIo(Stretch(done), [cb = std::move(cb)]() { cb(OkStatus()); });
}

void ConvSsd::SubmitRead(uint64_t lbn, uint64_t nblocks, ReadCallback cb) {
  AtArrival([this, lbn, nblocks, cb = std::move(cb)]() mutable {
    DoRead(lbn, nblocks, std::move(cb));
  });
}

void ConvSsd::DoRead(uint64_t lbn, uint64_t nblocks, ReadCallback cb) {
  auto fail = [this, &cb](Status status) {
    CompleteIoNow(
        [cb = std::move(cb), status = std::move(status)] { cb(status, {}); });
  };
  Status fault = FaultCheck(IoKind::kRead);
  if (!fault.ok()) {
    fail(std::move(fault));
    return;
  }
  if (nblocks == 0 || lbn + nblocks > config_.capacity_blocks) {
    fail(OutOfRangeError("read beyond capacity"));
    return;
  }
  std::vector<uint64_t> patterns;
  patterns.reserve(nblocks);
  int channel = 0;
  for (uint64_t i = 0; i < nblocks; ++i) {
    const uint64_t ppn = L2p(lbn + i);
    if (ppn == kUnmapped) {
      patterns.push_back(0);
    } else {
      patterns.push_back(page_pattern_.Get(ppn));
      channel = flash_blocks_[ppn / config_.pages_per_flash_block].channel;
    }
  }
  stats_.host_read_blocks += nblocks;
  const SimTime done = backend_->Read(channel, nblocks * kBlockSize);
  CompleteIo(Stretch(done),
             [cb = std::move(cb), patterns = std::move(patterns)]() mutable {
               cb(OkStatus(), std::move(patterns));
             });
}

Result<uint64_t> ConvSsd::ReadPatternSync(uint64_t lbn) const {
  if (lbn >= config_.capacity_blocks) {
    return OutOfRangeError("bad lbn");
  }
  const uint64_t ppn = L2p(lbn);
  if (ppn == kUnmapped) {
    return NotFoundError("unmapped lbn");
  }
  return page_pattern_.Get(ppn);
}

uint64_t ConvSsd::ResidentStateBytes() const {
  return l2p_.allocated_bytes() + p2l_.allocated_bytes() +
         page_pattern_.allocated_bytes() +
         flash_blocks_.capacity() * sizeof(FlashBlock) +
         active_blocks_.capacity() * sizeof(uint64_t);
}

}  // namespace biza
