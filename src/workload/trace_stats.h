// Trace statistics: write ratio, request sizes, and the exact reuse-distance
// CDF (Fig. 4 / Table 6 verification).
//
// Reuse distance of a write is the number of bytes written to the device
// between two consecutive writes of the same block address (§3.1). Computed
// exactly with a per-block last-position map.
#ifndef BIZA_SRC_WORKLOAD_TRACE_STATS_H_
#define BIZA_SRC_WORKLOAD_TRACE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/workload/workload.h"

namespace biza {

class TraceStats {
 public:
  void Observe(const BlockRequest& req) {
    requests_++;
    if (req.is_write) {
      write_requests_++;
      write_blocks_ += req.nblocks;
      for (uint64_t b = 0; b < req.nblocks; ++b) {
        const uint64_t block = req.offset_blocks + b;
        auto it = last_write_.find(block);
        if (it != last_write_.end()) {
          reuse_distances_.push_back((write_clock_ - it->second) * kBlockSize);
          it->second = write_clock_;
        } else {
          last_write_.emplace(block, write_clock_);
        }
        write_clock_++;
      }
    } else {
      read_blocks_ += req.nblocks;
    }
  }

  uint64_t requests() const { return requests_; }
  double write_ratio() const {
    return requests_ == 0
               ? 0.0
               : static_cast<double>(write_requests_) /
                     static_cast<double>(requests_);
  }
  double avg_write_kb() const {
    return write_requests_ == 0
               ? 0.0
               : static_cast<double>(write_blocks_ * 4) /
                     static_cast<double>(write_requests_);
  }
  double avg_read_kb() const {
    const uint64_t read_requests = requests_ - write_requests_;
    return read_requests == 0 ? 0.0
                              : static_cast<double>(read_blocks_ * 4) /
                                    static_cast<double>(read_requests);
  }

  // Fraction of reuse events with distance <= threshold bytes.
  double ReuseCdfAt(uint64_t threshold_bytes) const {
    if (reuse_distances_.empty()) {
      return 0.0;
    }
    uint64_t below = 0;
    for (uint64_t d : reuse_distances_) {
      if (d <= threshold_bytes) {
        below++;
      }
    }
    return static_cast<double>(below) /
           static_cast<double>(reuse_distances_.size());
  }

  // Full CDF sampled at the given thresholds (bytes).
  std::vector<double> ReuseCdf(const std::vector<uint64_t>& thresholds) const {
    std::vector<uint64_t> sorted = reuse_distances_;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> cdf;
    cdf.reserve(thresholds.size());
    for (uint64_t t : thresholds) {
      const auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
      cdf.push_back(sorted.empty()
                        ? 0.0
                        : static_cast<double>(it - sorted.begin()) /
                              static_cast<double>(sorted.size()));
    }
    return cdf;
  }

  uint64_t reuse_events() const { return reuse_distances_.size(); }

 private:
  uint64_t requests_ = 0;
  uint64_t write_requests_ = 0;
  uint64_t write_blocks_ = 0;
  uint64_t read_blocks_ = 0;
  uint64_t write_clock_ = 0;  // blocks written so far
  std::unordered_map<uint64_t, uint64_t> last_write_;
  std::vector<uint64_t> reuse_distances_;
};

}  // namespace biza

#endif  // BIZA_SRC_WORKLOAD_TRACE_STATS_H_
