// Conservative-lookahead sharded PDES: one host logical clock plus N device
// shard clocks advancing in lockstep windows.
//
// Topology is a star. The host Simulator runs every engine, driver, and
// RAID layer; each device shard runs the event queue of one or more member
// SSDs (assigned round-robin). The only cross-clock edges are:
//
//   host -> device : dispatch arrivals. A Submit* call made from a host
//                    event schedules the arrival on the device shard at
//                    HostNow() + dispatch latency, and every device config
//                    has dispatch_base_ns > 0 — that floor is the lookahead
//                    window L (the NAND op-latency floors of Doekemeijer et
//                    al. sit behind it and only push completions later).
//   device -> host : completions. Devices never touch the host heap
//                    directly; Simulator::CompleteAt/CompleteNow append
//                    timestamped messages to the shard's ShardOutbox and
//                    the router merges them at the next phase barrier.
//
// Round structure (RunRounds): with N(k) = the minimum next-event time over
// the host and all shards, the safe horizon is H(k) = N(k) + L.
//   1. D-phase: every device shard drains its events < H(k) in parallel.
//      Safe: unscheduled arrivals come from host events >= N(k), so they
//      land at >= N(k) + L = H(k).
//   2. Merge: outboxes are appended to the host heap in shard-index order
//      (FIFO within a shard), so equal-timestamp completions from different
//      shards always fire in shard order — the sharded determinism
//      contract. Safe: a completion's timestamp is >= the device event that
//      produced it, which is >= H(k-1) > every host event already fired.
//   3. E-phase: the host drains its events < H(k) on the calling thread,
//      with every device's schedule floor armed at H(k) so a lookahead
//      violation trips immediately. Complete: any future completion comes
//      from a device event >= H(k). Synchronous control-plane calls
//      (OpenZone, ResetZone, Report, ...) execute here while the workers
//      are parked; they may observe device state up to L in the future,
//      which is deterministic and bounded by the 2 us window.
// Every event everywhere is >= H(k) once round k retires, so horizons
// advance by >= L per round and the loop terminates.
//
// Workers synchronize through spin barriers (a full run is ~1M rounds of a
// few microseconds of simulated time each; futex wakeups would dominate).
// Phases never overlap, so shard state needs no locks; the round/pending
// atomics carry the acquire/release edges.
//
// Determinism: the phase sequence, per-shard drain order, and merge order
// are all independent of thread scheduling, so a run depends only on
// (seed, shard count). Results legitimately differ from the single-shard
// engine — completions from different devices interleave by shard order
// rather than global submission order — hence the separate contract, just
// like parallel_runner's submission-order rule.
#ifndef BIZA_SRC_SIM_SHARD_ROUTER_H_
#define BIZA_SRC_SIM_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/simulator.h"

namespace biza {

// Shard count requested via BIZA_SIM_SHARDS (>= 1; absent/invalid -> 1).
int DefaultSimShards();

class ShardRouter {
 public:
  // Attaches to `host` (host->RunUntilIdle()/RunUntil()/DropPending() then
  // delegate here) and spawns one worker thread per shard. `lookahead_ns`
  // must be a lower bound on every host->device dispatch latency.
  ShardRouter(Simulator* host, int num_shards, SimTime lookahead_ns);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  Simulator* shard(int index) { return &shards_[static_cast<size_t>(index)]->sim; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  SimTime lookahead_ns() const { return lookahead_; }

  // fired_events() summed over the host and every shard.
  uint64_t TotalFired() const;
  // Lookahead violations recorded by release builds (debug builds assert).
  uint64_t FloorViolations() const;

  // Entry points, reached via the host Simulator's public API.
  SimTime RunUntilIdle();
  void RunUntil(SimTime deadline);
  void DropPending();

 private:
  struct Shard {
    Simulator sim;
    ShardOutbox outbox;
  };

  void RunRounds(SimTime deadline);
  void WorkerMain(int index);

  Simulator* host_;
  SimTime lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Barrier state. round_ is a generation counter: the router publishes
  // horizon_/pending_ and bumps round_ (release); workers wake on the bump
  // (acquire), drain, and decrement pending_ (release); the router waits
  // for pending_ == 0 (acquire). Both sides spin briefly — the partner
  // phase is sub-microsecond in steady state — then park on a condition
  // variable, so an undersubscribed box (or a long host phase) never burns
  // cores. spin_limit_ is 0 when the machine cannot run the partner
  // concurrently anyway. Separate cache lines keep the worker spin loop off
  // the line the router writes.
  alignas(64) std::atomic<uint64_t> round_{0};
  alignas(64) std::atomic<SimTime> horizon_{0};
  alignas(64) std::atomic<int> pending_{0};
  std::atomic<bool> stop_{false};
  bool in_rounds_ = false;
  int spin_limit_ = 0;

  // Sleep path of the adaptive barrier: wake_cv_ parks workers between
  // rounds, done_cv_ parks the router inside a D-phase. Writers bump the
  // atomic first, then acquire the mutex and notify; waiters recheck the
  // atomic under the mutex before sleeping, so wakeups cannot be missed.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  std::vector<std::thread> workers_;
};

}  // namespace biza

#endif  // BIZA_SRC_SIM_SHARD_ROUTER_H_
