#include "src/zns/zns_device.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace biza {

std::string_view ZoneStateName(ZoneState state) {
  switch (state) {
    case ZoneState::kEmpty:
      return "EMPTY";
    case ZoneState::kOpen:
      return "OPEN";
    case ZoneState::kClosed:
      return "CLOSED";
    case ZoneState::kFull:
      return "FULL";
    case ZoneState::kOffline:
      return "OFFLINE";
  }
  return "UNKNOWN";
}

ZnsDevice::ZnsDevice(Simulator* sim, const ZnsConfig& config)
    : sim_(sim),
      config_(config),
      backend_(std::make_unique<NandBackend>(sim, config.timing)),
      nvmeq_(sim, config.nvme, config.dispatch_base_ns),
      rng_(config.seed) {
  zones_.resize(config_.num_zones);
  // Chunk granularity: zones fill sequentially (append discipline), so
  // 1024-block chunks keep overhead near one chunk of slack per open zone
  // while a never-written full-geometry zone (275,712 blocks) costs only
  // its chunk-pointer table.
  const uint64_t chunk =
      std::min<uint64_t>(config_.zone_capacity_blocks, 1024);
  for (auto& z : zones_) {
    z.blocks = ChunkedArray<Block>(config_.zone_capacity_blocks, chunk);
    if (config_.dense_state) {
      z.blocks.PreallocateAll();  // dense reference mode (equivalence tests)
    }
  }
}

void ZnsDevice::AttachObservability(Observability* obs, int device_id) {
  obs_ = obs;
  if (obs_ == nullptr) {
    h_write_ = nullptr;
    h_read_ = nullptr;
    backend_->SetTracer(nullptr, device_id);
    return;
  }
  const std::string prefix = "dev" + std::to_string(device_id) + ".zns.";
  StatRegistry& reg = obs_->registry;
  reg.RegisterCounter(prefix + "host_written_blocks",
                      [this] { return stats_.host_written_blocks; });
  reg.RegisterCounter(prefix + "flash_programmed_blocks",
                      [this] { return stats_.flash_programmed_blocks; });
  reg.RegisterCounter(prefix + "zrwa_absorbed_blocks",
                      [this] { return stats_.zrwa_absorbed_blocks; });
  reg.RegisterCounter(prefix + "host_read_blocks",
                      [this] { return stats_.host_read_blocks; });
  reg.RegisterCounter(prefix + "zone_resets",
                      [this] { return stats_.zone_resets; });
  reg.RegisterCounter(prefix + "write_failures",
                      [this] { return stats_.write_failures; });
  reg.RegisterGauge(prefix + "open_zones", [this] {
    return static_cast<uint64_t>(open_zones_);
  });
  // ZRWA occupancy: blocks currently inside some open zone's sliding window
  // (i.e. admitted but not yet committed to flash).
  reg.RegisterGauge(prefix + "zrwa_occupancy_blocks", [this] {
    uint64_t occupied = 0;
    for (const Zone& z : zones_) {
      if (z.state == ZoneState::kOpen && z.with_zrwa &&
          z.high_water > z.flush_ptr) {
        occupied += z.high_water - z.flush_ptr;
      }
    }
    return occupied;
  });
  for (int c = 0; c < backend_->num_channels(); ++c) {
    reg.RegisterGauge(prefix + "chan" + std::to_string(c) + ".backlog_ns",
                      [this, c] { return backend_->ChannelBacklogNs(c); });
  }
  if (nvmeq_.enabled()) {
    reg.RegisterCounter(prefix + "nvme.doorbells",
                        [this] { return nvmeq_.stats().doorbells; });
    reg.RegisterCounter(prefix + "nvme.interrupts",
                        [this] { return nvmeq_.stats().interrupts; });
    reg.RegisterCounter(prefix + "nvme.qd_stalls",
                        [this] { return nvmeq_.stats().qd_stalls; });
  }
  h_write_ = reg.Histogram(prefix + "write_latency_ns");
  h_read_ = reg.Histogram(prefix + "read_latency_ns");
  span_write_ = obs_->tracer.Intern("zns.write");
  span_read_ = obs_->tracer.Intern("zns.read");
  span_append_ = obs_->tracer.Intern("zns.append");
  key_zone_ = obs_->tracer.Intern("zone");
  key_offset_ = obs_->tracer.Intern("offset");
  key_blocks_ = obs_->tracer.Intern("blocks");
  backend_->SetTracer(&obs_->tracer, device_id);
}

SimTime ZnsDevice::DispatchDelay() {
  SimTime delay = config_.dispatch_base_ns;
  if (config_.dispatch_jitter_ns > 0) {
    delay += rng_.Uniform(config_.dispatch_jitter_ns);
  }
  return delay;
}

Status ZnsDevice::ValidateZoneId(uint32_t zone) const {
  if (zone >= config_.num_zones) {
    return OutOfRangeError("zone " + std::to_string(zone) + " out of range");
  }
  return OkStatus();
}

void ZnsDevice::AssignChannel(Zone& z) {
  if (config_.wear_level_deviation > 0.0 &&
      rng_.Chance(config_.wear_level_deviation)) {
    z.channel = static_cast<int>(rng_.Uniform(
        static_cast<uint64_t>(config_.timing.num_channels)));
  } else {
    z.channel = static_cast<int>(open_rr_counter_ %
                                 static_cast<uint64_t>(config_.timing.num_channels));
  }
  open_rr_counter_++;
}

Status ZnsDevice::EnsureOpenForWrite(Zone& z, uint32_t zone_id) {
  switch (z.state) {
    case ZoneState::kOpen:
      return OkStatus();
    case ZoneState::kEmpty:
    case ZoneState::kClosed:
      if (z.state == ZoneState::kEmpty) {
        // Implicit open.
        if (open_zones_ >= config_.max_open_zones) {
          return ResourceExhaustedError("open zone limit reached");
        }
        AssignChannel(z);
      } else if (open_zones_ >= config_.max_open_zones) {
        return ResourceExhaustedError("open zone limit reached");
      }
      z.state = ZoneState::kOpen;
      open_zones_++;
      return OkStatus();
    case ZoneState::kFull:
      return ZoneStateError("zone " + std::to_string(zone_id) + " is FULL");
    case ZoneState::kOffline:
      return ZoneStateError("zone " + std::to_string(zone_id) + " is OFFLINE");
  }
  return InternalError("bad zone state");
}

SimTime ZnsDevice::FlushRange(Zone& z, uint64_t from, uint64_t to) {
  assert(to <= z.blocks.size());
  uint64_t flushed = 0;
  for (uint64_t b = from; b < to; ++b) {
    b = z.blocks.SkipUnallocated(b);  // hop never-written gaps chunk-wise
    if (b >= to) {
      break;
    }
    Block& block = z.blocks.Mut(b);
    if (block.buffered) {
      block.buffered = false;
      flushed++;
      stats_.flash_by_tag[static_cast<int>(block.oob.tag)]++;
    }
  }
  SimTime done = sim_->Now();
  if (flushed > 0) {
    stats_.flash_programmed_blocks += flushed;
    done = backend_->BackgroundProgram(z.channel, flushed * kBlockSize);
  }
  z.flush_ptr = to > z.flush_ptr ? to : z.flush_ptr;
  return done;
}

void ZnsDevice::MaybeTransitionFull(Zone& z) {
  if (z.flush_ptr >= z.blocks.size()) {
    if (z.state == ZoneState::kOpen) {
      open_zones_--;
    }
    z.state = ZoneState::kFull;
  }
}

void ZnsDevice::SubmitWrite(uint32_t zone, uint64_t offset,
                            std::vector<uint64_t> patterns,
                            std::vector<OobRecord> oobs, WriteCallback cb) {
  AtArrival([this, zone, offset, patterns = std::move(patterns),
             oobs = std::move(oobs), cb = std::move(cb)]() mutable {
    DoWrite(zone, offset, std::move(patterns), std::move(oobs), std::move(cb));
  });
}

void ZnsDevice::DoWrite(uint32_t zone, uint64_t offset,
                        std::vector<uint64_t> patterns,
                        std::vector<OobRecord> oobs, WriteCallback cb) {
  // Error completions leave the device with zero device-side latency, so
  // they too must cross back to the host as messages; the unsharded legacy
  // path invokes them inline, exactly as before.
  auto fail = [this, &cb](Status status) {
    CompleteIoNow(
        [cb = std::move(cb), status = std::move(status)] { cb(status); });
  };
  Status status = FaultCheck(IoKind::kWrite);
  if (!status.ok()) {
    fail(std::move(status));
    return;
  }
  status = ValidateZoneId(zone);
  if (!status.ok()) {
    fail(std::move(status));
    return;
  }
  const uint64_t n = patterns.size();
  if (n == 0 || (!oobs.empty() && oobs.size() != n)) {
    fail(InvalidArgumentError("bad write payload"));
    return;
  }
  Zone& z = zones_[zone];
  const uint64_t end = offset + n;
  if (end > z.blocks.size()) {
    fail(OutOfRangeError("write beyond zone capacity"));
    return;
  }
  status = EnsureOpenForWrite(z, zone);
  if (!status.ok()) {
    fail(std::move(status));
    return;
  }

  stats_.host_written_blocks += n;
  const uint64_t bytes = n * kBlockSize;

  if (z.with_zrwa) {
    if (offset < z.flush_ptr) {
      // The reorder hazard of §3.2: the window has shifted past this write.
      stats_.write_failures++;
      fail(WriteFailureError("write at " + std::to_string(offset) +
                             " behind ZRWA window start " +
                             std::to_string(z.flush_ptr)));
      return;
    }
    const uint64_t window_end = z.flush_ptr + config_.zrwa_blocks;
    SimTime flush_done = 0;
    if (end > window_end) {
      // Implicit commit: shift the window right, programming the blocks that
      // leave it (Fig. 3b of the paper). The triggering write completes only
      // once the commit drains — buffer-admission backpressure. This is how
      // channel congestion (e.g. GC) becomes visible to ZRWA writes.
      flush_done = FlushRange(z, z.flush_ptr, end - config_.zrwa_blocks);
    }
    for (uint64_t i = 0; i < n; ++i) {
      Block& block = z.blocks.Mut(offset + i);
      if (block.written && block.buffered) {
        stats_.zrwa_absorbed_blocks++;  // in-place update absorbed in DRAM
      }
      block.pattern = patterns[i];
      block.oob = oobs.empty() ? OobRecord{} : oobs[i];
      block.written = true;
      block.buffered = true;
    }
    if (end > z.high_water) {
      z.high_water = end;
    }
    const SimTime buffered = backend_->BufferWrite(bytes);
    // Ack pacing: a zone acknowledges ZRWA writes at its channel's transfer
    // rate (pipelined), plus the fixed ack. This is what makes ONE in-flight
    // write per zone deliver only a fraction of the zone bandwidth (Fig. 5)
    // while 32-deep submission saturates it.
    const SimTime base = buffered > z.ack_free ? buffered : z.ack_free;
    z.ack_free = base + TransferNs(bytes, config_.timing.chan_write_mbps);
    SimTime done = z.ack_free + config_.timing.write_ack_ns;
    // Stall additionally for flush backlog beyond the buffer-drain
    // allowance (GC congestion surfaces here).
    if (flush_done > sim_->Now() + config_.zrwa_flush_allowance_ns) {
      const SimTime gated = flush_done - config_.zrwa_flush_allowance_ns;
      if (gated > done) {
        done = gated;
      }
    }
    MaybeTransitionFull(z);
    const SimTime fin = Stretch(z.channel, done);
    ObserveIo(span_write_, h_write_, fin, zone, offset, n);
    CompleteIo(fin, [cb = std::move(cb)]() { cb(OkStatus()); });
    return;
  }

  // Sequential-write-required zone.
  if (offset != z.flush_ptr) {
    stats_.write_failures++;
    fail(WriteFailureError("non-sequential write at " + std::to_string(offset) +
                           ", wptr=" + std::to_string(z.flush_ptr)));
    return;
  }
  for (uint64_t i = 0; i < n; ++i) {
    Block& block = z.blocks.Mut(offset + i);
    block.pattern = patterns[i];
    block.oob = oobs.empty() ? OobRecord{} : oobs[i];
    block.written = true;
    block.buffered = false;
    stats_.flash_by_tag[static_cast<int>(block.oob.tag)]++;
  }
  z.flush_ptr = end;
  z.high_water = end;
  stats_.flash_programmed_blocks += n;
  const SimTime done = backend_->Write(z.channel, bytes);
  MaybeTransitionFull(z);
  const SimTime fin = Stretch(z.channel, done);
  ObserveIo(span_write_, h_write_, fin, zone, offset, n);
  CompleteIo(fin, [cb = std::move(cb)]() { cb(OkStatus()); });
}

void ZnsDevice::SubmitAppend(uint32_t zone, std::vector<uint64_t> patterns,
                             std::vector<OobRecord> oobs, AppendCallback cb) {
  AtArrival([this, zone, patterns = std::move(patterns), oobs = std::move(oobs),
             cb = std::move(cb)]() mutable {
    DoAppend(zone, std::move(patterns), std::move(oobs), std::move(cb));
  });
}

void ZnsDevice::DoAppend(uint32_t zone, std::vector<uint64_t> patterns,
                         std::vector<OobRecord> oobs, AppendCallback cb) {
  auto fail = [this, &cb](Status status) {
    CompleteIoNow(
        [cb = std::move(cb), status = std::move(status)] { cb(status, 0); });
  };
  Status status = FaultCheck(IoKind::kWrite);
  if (!status.ok()) {
    fail(std::move(status));
    return;
  }
  status = ValidateZoneId(zone);
  if (!status.ok()) {
    fail(std::move(status));
    return;
  }
  Zone& z = zones_[zone];
  if (z.with_zrwa) {
    // NVMe ZNS 1.1a: zones opened with ZRWA abort APPEND commands.
    fail(ZoneStateError("APPEND on a ZRWA zone"));
    return;
  }
  const uint64_t n = patterns.size();
  if (n == 0) {
    fail(InvalidArgumentError("empty append"));
    return;
  }
  if (z.flush_ptr + n > z.blocks.size()) {
    fail(OutOfRangeError("append beyond zone capacity"));
    return;
  }
  status = EnsureOpenForWrite(z, zone);
  if (!status.ok()) {
    fail(std::move(status));
    return;
  }
  const uint64_t offset = z.flush_ptr;
  for (uint64_t i = 0; i < n; ++i) {
    Block& block = z.blocks.Mut(offset + i);
    block.pattern = patterns[i];
    block.oob = oobs.empty() ? OobRecord{} : oobs[i];
    block.written = true;
    block.buffered = false;
    stats_.flash_by_tag[static_cast<int>(block.oob.tag)]++;
  }
  z.flush_ptr = offset + n;
  z.high_water = z.flush_ptr;
  stats_.host_written_blocks += n;
  stats_.flash_programmed_blocks += n;
  const SimTime done = backend_->Write(z.channel, n * kBlockSize);
  MaybeTransitionFull(z);
  const SimTime fin = Stretch(z.channel, done);
  ObserveIo(span_append_, h_write_, fin, zone, offset, n);
  CompleteIo(fin,
             [cb = std::move(cb), offset]() { cb(OkStatus(), offset); });
}

void ZnsDevice::SubmitRead(uint32_t zone, uint64_t offset, uint64_t nblocks,
                           ReadCallback cb) {
  AtArrival([this, zone, offset, nblocks, cb = std::move(cb)]() mutable {
    DoRead(zone, offset, nblocks, std::move(cb));
  });
}

void ZnsDevice::DoRead(uint32_t zone, uint64_t offset, uint64_t nblocks,
                       ReadCallback cb) {
  auto fail = [this, &cb](Status status) {
    CompleteIoNow(
        [cb = std::move(cb), status = std::move(status)] { cb(status, {}); });
  };
  Status status = FaultCheck(IoKind::kRead);
  if (!status.ok()) {
    fail(std::move(status));
    return;
  }
  status = ValidateZoneId(zone);
  if (!status.ok()) {
    fail(std::move(status));
    return;
  }
  Zone& z = zones_[zone];
  if (nblocks == 0 || offset + nblocks > z.blocks.size()) {
    fail(OutOfRangeError("read beyond zone capacity"));
    return;
  }
  if (z.state == ZoneState::kOffline) {
    fail(ZoneStateError("zone offline"));
    return;
  }
  ReadResult result;
  result.patterns.reserve(nblocks);
  result.oobs.reserve(nblocks);
  bool all_buffered = true;
  for (uint64_t i = 0; i < nblocks; ++i) {
    // Unwritten blocks read back as zero (deallocated-value semantics);
    // a never-allocated chunk stands in for a run of unwritten blocks.
    const Block* block = z.blocks.Peek(offset + i);
    const bool written = block != nullptr && block->written;
    result.patterns.push_back(written ? block->pattern : 0);
    result.oobs.push_back(written ? block->oob : OobRecord{});
    if (!written || !block->buffered) {
      all_buffered = false;
    }
  }
  stats_.host_read_blocks += nblocks;
  const uint64_t bytes = nblocks * kBlockSize;
  SimTime done;
  if (all_buffered) {
    done = backend_->BufferRead(bytes);
  } else if (z.channel >= 0) {
    done = backend_->Read(z.channel, bytes);
  } else {
    // Never-written zone: instant zero-fill from the controller.
    done = backend_->BufferRead(bytes);
  }
  const SimTime fin = Stretch(z.channel, done);
  ObserveIo(span_read_, h_read_, fin, zone, offset, nblocks);
  CompleteIo(fin,
             [cb = std::move(cb), result = std::move(result)]() mutable {
               cb(OkStatus(), std::move(result));
             });
}

Status ZnsDevice::OpenZone(uint32_t zone, bool with_zrwa) {
  BIZA_RETURN_IF_ERROR(CheckAlive());
  BIZA_RETURN_IF_ERROR(ValidateZoneId(zone));
  Zone& z = zones_[zone];
  if (with_zrwa && config_.zrwa_blocks == 0) {
    return UnimplementedError("device has no ZRWA support");
  }
  switch (z.state) {
    case ZoneState::kOpen:
      if (z.with_zrwa != with_zrwa) {
        return ZoneStateError("zone already open with different ZRWA mode");
      }
      return OkStatus();
    case ZoneState::kEmpty:
      if (open_zones_ >= config_.max_open_zones) {
        return ResourceExhaustedError("open zone limit reached");
      }
      AssignChannel(z);
      z.state = ZoneState::kOpen;
      z.with_zrwa = with_zrwa;
      open_zones_++;
      return OkStatus();
    case ZoneState::kClosed:
      if (open_zones_ >= config_.max_open_zones) {
        return ResourceExhaustedError("open zone limit reached");
      }
      if (z.with_zrwa != with_zrwa) {
        return ZoneStateError("closed zone has different ZRWA mode");
      }
      z.state = ZoneState::kOpen;
      open_zones_++;
      return OkStatus();
    case ZoneState::kFull:
      return ZoneStateError("cannot open FULL zone");
    case ZoneState::kOffline:
      return ZoneStateError("cannot open OFFLINE zone");
  }
  return InternalError("bad zone state");
}

Status ZnsDevice::CloseZone(uint32_t zone) {
  BIZA_RETURN_IF_ERROR(CheckAlive());
  BIZA_RETURN_IF_ERROR(ValidateZoneId(zone));
  Zone& z = zones_[zone];
  if (z.state != ZoneState::kOpen) {
    return ZoneStateError("close on non-open zone");
  }
  z.state = ZoneState::kClosed;
  open_zones_--;
  return OkStatus();
}

Status ZnsDevice::FinishZone(uint32_t zone) {
  BIZA_RETURN_IF_ERROR(CheckAlive());
  BIZA_RETURN_IF_ERROR(ValidateZoneId(zone));
  Zone& z = zones_[zone];
  if (z.state == ZoneState::kFull) {
    return OkStatus();
  }
  if (z.state == ZoneState::kOffline) {
    return ZoneStateError("finish on offline zone");
  }
  if (z.state == ZoneState::kEmpty) {
    if (open_zones_ >= config_.max_open_zones) {
      return ResourceExhaustedError("open zone limit reached");
    }
    AssignChannel(z);
    open_zones_++;  // transient open; released below
    z.state = ZoneState::kOpen;
  } else if (z.state == ZoneState::kClosed) {
    open_zones_++;
    z.state = ZoneState::kOpen;
  }
  if (z.with_zrwa) {
    FlushRange(z, z.flush_ptr, z.high_water);
  }
  z.flush_ptr = z.blocks.size();
  MaybeTransitionFull(z);
  return OkStatus();
}

Status ZnsDevice::ResetZone(uint32_t zone) {
  BIZA_RETURN_IF_ERROR(CheckAlive());
  BIZA_RETURN_IF_ERROR(ValidateZoneId(zone));
  Zone& z = zones_[zone];
  if (z.state == ZoneState::kOffline) {
    return ZoneStateError("reset on offline zone");
  }
  if (z.state == ZoneState::kOpen) {
    open_zones_--;
  }
  if (z.channel >= 0 && z.high_water > 0) {
    backend_->Erase(z.channel);
  }
  z.blocks.Clear();  // bulk-free the chunked block state with the erase
  if (config_.dense_state) {
    z.blocks.PreallocateAll();
  }
  z.state = ZoneState::kEmpty;
  z.with_zrwa = false;
  z.flush_ptr = 0;
  z.high_water = 0;
  z.channel = -1;
  z.ack_free = 0;
  stats_.zone_resets++;
  return OkStatus();
}

Status ZnsDevice::CommitZrwa(uint32_t zone, uint64_t upto) {
  BIZA_RETURN_IF_ERROR(CheckAlive());
  BIZA_RETURN_IF_ERROR(ValidateZoneId(zone));
  Zone& z = zones_[zone];
  if (!z.with_zrwa) {
    return ZoneStateError("commit on non-ZRWA zone");
  }
  if (upto > z.blocks.size()) {
    return OutOfRangeError("commit beyond zone capacity");
  }
  if (upto <= z.flush_ptr) {
    return OkStatus();  // nothing to do
  }
  FlushRange(z, z.flush_ptr, upto);
  MaybeTransitionFull(z);
  return OkStatus();
}

ZoneInfo ZnsDevice::Report(uint32_t zone) const {
  ZoneInfo info;
  if (zone >= config_.num_zones) {
    return info;
  }
  const Zone& z = zones_[zone];
  info.state = z.state;
  info.with_zrwa = z.with_zrwa;
  info.write_pointer = z.flush_ptr;
  info.high_water = z.high_water;
  return info;
}

Result<OobRecord> ZnsDevice::ReadOobSync(uint32_t zone, uint64_t offset) const {
  BIZA_RETURN_IF_ERROR(CheckAlive());
  if (zone >= config_.num_zones) {
    return OutOfRangeError("bad zone");
  }
  const Zone& z = zones_[zone];
  if (offset >= z.blocks.size()) {
    return OutOfRangeError("bad offset");
  }
  const Block* block = z.blocks.Peek(offset);
  if (block == nullptr || !block->written) {
    return NotFoundError("block not written");
  }
  return block->oob;
}

Result<uint64_t> ZnsDevice::ReadPatternSync(uint32_t zone,
                                            uint64_t offset) const {
  BIZA_RETURN_IF_ERROR(CheckAlive());
  if (zone >= config_.num_zones) {
    return OutOfRangeError("bad zone");
  }
  const Zone& z = zones_[zone];
  if (offset >= z.blocks.size()) {
    return OutOfRangeError("bad offset");
  }
  const Block* block = z.blocks.Peek(offset);
  if (block == nullptr || !block->written) {
    return NotFoundError("block not written");
  }
  return block->pattern;
}

uint64_t ZnsDevice::NextWrittenCandidate(uint32_t zone, uint64_t from) const {
  if (zone >= config_.num_zones) {
    return 0;
  }
  const Zone& z = zones_[zone];
  if (from >= z.blocks.size()) {
    return z.blocks.size();
  }
  return z.blocks.SkipUnallocated(from);
}

uint64_t ZnsDevice::ResidentStateBytes() const {
  uint64_t bytes = 0;
  for (const Zone& z : zones_) {
    bytes += z.blocks.allocated_bytes();
  }
  return bytes;
}

int ZnsDevice::DebugChannelOf(uint32_t zone) const {
  if (zone >= config_.num_zones) {
    return -1;
  }
  return zones_[zone].channel;
}

int ZnsDevice::ChannelOf(uint32_t zone) const {
  if (!config_.expose_channel_on_open) {
    return -1;  // hidden behind the ZNS interface, as on today's devices
  }
  return DebugChannelOf(zone);
}

}  // namespace biza
