file(REMOVE_RECURSE
  "libbiza_common.a"
)
