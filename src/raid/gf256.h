// GF(2^8) arithmetic over the AES/Rijndael-compatible polynomial 0x11D,
// table-driven. Foundation for the Reed-Solomon codec used by RAID 6 and
// general m-fault-tolerant stripes (§2: "Reed-Solomon code for other general
// scenarios").
#ifndef BIZA_SRC_RAID_GF256_H_
#define BIZA_SRC_RAID_GF256_H_

#include <array>
#include <cstdint>

namespace biza {

class Gf256 {
 public:
  static uint8_t Mul(uint8_t a, uint8_t b) {
    if (a == 0 || b == 0) {
      return 0;
    }
    return exp_[log_[a] + log_[b]];
  }

  static uint8_t Div(uint8_t a, uint8_t b);
  static uint8_t Inv(uint8_t a);

  // g^power for the generator g = 2.
  static uint8_t Exp(int power) {
    power %= 255;
    if (power < 0) {
      power += 255;
    }
    return exp_[power];
  }

  static uint8_t Log(uint8_t a);

 private:
  static const std::array<uint8_t, 512> exp_;
  static const std::array<int, 256> log_;
};

}  // namespace biza

#endif  // BIZA_SRC_RAID_GF256_H_
