# Empty dependencies file for biza_core.
# This may be replaced when dependencies are built.
