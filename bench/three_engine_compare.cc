// Three-engine design-point comparison: write amplification, tail write
// latency and CPU efficiency for the three block-interface engines on
// identical ZNS members:
//
//   mdraid+dmzap — in-place parity over a per-SSD translation layer,
//   BIZA         — ZRWA-anchored self-governing array (the paper's design),
//   ZapRAID      — log-structured group RAID over raw zones (no ZRWA).
//
// One random-overwrite run per engine: prefill half the exposed capacity,
// then overwrite it ~1.5x so every engine reaches steady-state GC. The same
// churn hits each engine, so the WA split (data vs parity), the GC-era tail
// and the CPU bill are directly comparable design-point measurements rather
// than separately tuned best cases.
//
// Expected shape: ZapRAID's group-granular log-structured parity avoids
// mdraid's read-modify-write parity traffic but pays data-relocation WA
// that BIZA's ZRWA in-place updates avoid; mdraid burns the most CPU in the
// dm-zap translation layer; BIZA holds the lowest GC-era tails.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/wa_report.h"

namespace biza {
namespace {

struct EngineCell {
  double wa_data = 0;
  double wa_parity = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double mbps = 0;
  double cpu_pct = 0;
  double wa_total() const { return wa_data + wa_parity; }
};

EngineCell RunCase(PlatformKind kind, uint64_t seed) {
  Simulator sim;
  PlatformConfig config = BenchConfig(41 + seed);
  // Fair buffers (§5.4) and matched utilization so every engine runs GC.
  config.mdraid.stripe_cache_blocks = 14336;
  config.biza.exposed_capacity_ratio = 0.60;
  config.zapraid.exposed_capacity_ratio = 0.60;
  auto platform = Platform::Create(&sim, kind, config);
  BlockTarget* target = platform->block();

  const uint64_t half = target->capacity_blocks() / 2;
  Driver::Fill(&sim, target, half);

  const SimTime start = sim.Now();
  MicroWorkload churn(/*sequential=*/false, /*write=*/true,
                      /*request_blocks=*/8, /*footprint=*/half, 3 + seed);
  Driver driver(&sim, target, &churn, /*iodepth=*/16);
  // 3x the prefilled footprint: with parity the log wraps the raw flash
  // capacity, so reclaim (not clean appends) is the steady state measured.
  const uint64_t requests = (3 * half) / 8;
  const DriverReport report = driver.Run(requests, 16 * kSecond);
  const SimTime elapsed = sim.Now() - start;
  platform->Quiesce(&sim);

  const uint64_t user_blocks = half + report.bytes_written / kBlockSize;
  const WaBreakdown wa = platform->CollectWa(user_blocks);

  SimTime cpu_ns = 0;
  for (const auto& [component, ns] : platform->CpuBreakdown()) {
    (void)component;
    cpu_ns += ns;
  }
  RecordSimEvents(sim, report);

  EngineCell cell;
  cell.wa_data = wa.DataRatio();
  cell.wa_parity = wa.ParityRatio();
  cell.p50_us = static_cast<double>(report.write_latency.Percentile(50)) / 1e3;
  cell.p99_us = static_cast<double>(report.write_latency.Percentile(99)) / 1e3;
  cell.p999_us =
      static_cast<double>(report.write_latency.Percentile(99.9)) / 1e3;
  cell.mbps = report.WriteMBps();
  cell.cpu_pct =
      static_cast<double>(cpu_ns) / static_cast<double>(elapsed) * 100.0;
  return cell;
}

void Run() {
  PrintTitle("Three-engine comparison",
             "WA, GC-era tail latency and CPU across biza|mdraid|zapraid");
  PrintPaperNote(
      "mdraid pays read-modify-write parity + translation-layer CPU; "
      "ZapRAID trades relocation WA for log-structured parity with no "
      "ZRWA dependency; BIZA anchors updates in ZRWA for the lowest WA "
      "and GC-era tails");

  const std::vector<PlatformKind> kinds = {
      PlatformKind::kMdraidDmzap, PlatformKind::kBiza, PlatformKind::kZapRaid};
  const int nseeds = BenchSeeds();
  std::vector<std::function<EngineCell()>> jobs;
  for (PlatformKind kind : kinds) {
    for (int s = 0; s < nseeds; ++s) {
      jobs.push_back(
          [kind, s]() { return RunCase(kind, static_cast<uint64_t>(s)); });
    }
  }
  const std::vector<EngineCell> results = RunExperiments(std::move(jobs));

  std::printf("%d seeds per row, mean±stddev (BIZA_BENCH_SEEDS overrides)\n",
              nseeds);
  std::printf("%-14s %18s %10s %22s %9s %10s\n", "engine",
              "WA data+par=total", "p50(us)", "p99/p99.9(us)", "MB/s",
              "CPU usage");
  size_t job_index = 0;
  for (PlatformKind kind : kinds) {
    std::vector<double> wa_d, wa_p, wa_t, p50, p99, p999, mbps, cpu;
    for (int s = 0; s < nseeds; ++s) {
      const EngineCell& c = results[job_index++];
      wa_d.push_back(c.wa_data);
      wa_p.push_back(c.wa_parity);
      wa_t.push_back(c.wa_total());
      p50.push_back(c.p50_us);
      p99.push_back(c.p99_us);
      p999.push_back(c.p999_us);
      mbps.push_back(c.mbps);
      cpu.push_back(c.cpu_pct);
    }
    const SeedStat t = MeanStddev(wa_t);
    std::printf("%-14s %5.2f+%4.2f=%4.2f±%4.2f %8.0f  %8.0f/%8.0f %9.0f %8.1f%%\n",
                PlatformKindName(kind), MeanStddev(wa_d).mean,
                MeanStddev(wa_p).mean, t.mean, t.stddev, MeanStddev(p50).mean,
                MeanStddev(p99).mean, MeanStddev(p999).mean,
                MeanStddev(mbps).mean, MeanStddev(cpu).mean);
  }
  std::printf(
      "\n(same churn per engine: fill half the exposed capacity, overwrite "
      "3x at iodepth 16)\n");
}

}  // namespace
}  // namespace biza

int main() {
  biza::BenchMetricScope metrics("three_engine_compare");
  biza::Run();
  return 0;
}
